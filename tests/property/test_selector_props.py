"""Property-based tests for endpoint selection."""

from hypothesis import assume, given, settings, strategies as st

from repro.core.selector import (
    coverage_curve,
    endpoint_weights,
    select_all_critical,
    select_budgeted,
)
from repro.timing.graph import TimingGraph


@st.composite
def graphs_with_critical_paths(draw):
    num_ffs = draw(st.integers(min_value=4, max_value=25))
    period = 1000
    graph = TimingGraph("g", period)
    for index in range(num_ffs):
        graph.add_ff(f"f{index}")
    num_edges = draw(st.integers(min_value=3, max_value=60))
    for _ in range(num_edges):
        src = draw(st.integers(min_value=0, max_value=num_ffs - 1))
        dst = draw(st.integers(min_value=0, max_value=num_ffs - 1))
        delay = draw(st.integers(min_value=400, max_value=period))
        graph.add_edge(f"f{src}", f"f{dst}", delay)
    return graph


percents = st.sampled_from([10.0, 20.0, 30.0, 40.0])


@settings(max_examples=40, deadline=None)
@given(graphs_with_critical_paths(), percents)
def test_weights_nonnegative_and_cover_endpoints(graph, percent):
    weights = endpoint_weights(graph, percent)
    assert set(weights) == graph.critical_endpoints(percent)
    assert all(w >= 0 for w in weights.values())


@settings(max_examples=40, deadline=None)
@given(graphs_with_critical_paths(), percents,
       st.floats(min_value=0, max_value=50))
def test_budgeted_subset_of_all_critical(graph, percent, budget):
    full = select_all_critical(graph, percent)
    partial = select_budgeted(graph, percent,
                              power_budget_percent=budget)
    assert partial.selected <= full.selected
    assert 0.0 <= partial.coverage <= 1.0 + 1e-9
    assert partial.power_overhead_percent <= budget + 1e-9


@settings(max_examples=40, deadline=None)
@given(graphs_with_critical_paths(), percents,
       st.floats(min_value=0, max_value=20),
       st.floats(min_value=20, max_value=100))
def test_coverage_monotone_in_budget(graph, percent, small, large):
    lo = select_budgeted(graph, percent, power_budget_percent=small)
    hi = select_budgeted(graph, percent, power_budget_percent=large)
    assert hi.coverage >= lo.coverage - 1e-12
    assert hi.num_selected >= lo.num_selected


@settings(max_examples=40, deadline=None)
@given(graphs_with_critical_paths(), percents,
       st.floats(min_value=0, max_value=100))
def test_greedy_is_optimal_for_uniform_costs(graph, percent, budget):
    """With identical per-element costs, no same-size selection beats
    greedy's covered weight."""
    weights = endpoint_weights(graph, percent)
    assume(weights)
    chosen = select_budgeted(graph, percent,
                             power_budget_percent=budget)
    k = chosen.num_selected
    best_k = sorted(weights.values(), reverse=True)[:k]
    covered = sum(weights[ff] for ff in chosen.selected)
    assert covered >= sum(best_k) - 1e-9
