"""Property-based tests for variability models."""

from hypothesis import given, settings, strategies as st

from repro.variability import (
    AgingVariation,
    CompositeVariation,
    ConstantVariation,
    LocalVariation,
    ProcessVariation,
    TemperatureDriftVariation,
    VoltageDroopVariation,
)

cycles = st.integers(min_value=0, max_value=10_000_000)
paths = st.text(alphabet="abcxyz0123", min_size=1, max_size=8)
seeds = st.integers(min_value=0, max_value=2**31)


@given(cycles, paths, seeds,
       st.floats(min_value=0.0, max_value=0.3, allow_nan=False))
def test_local_factor_positive_and_deterministic(cycle, path, seed, sigma):
    model = LocalVariation(sigma=sigma, seed=seed)
    value = model.factor(cycle, path)
    assert value > 0
    assert value == model.factor(cycle, path)
    assert value >= model.min_factor


@given(cycles, paths, seeds)
def test_droop_factor_bounded(cycle, path, seed):
    model = VoltageDroopVariation(event_probability=0.1, amplitude=0.08,
                                  amplitude_jitter=0.3, seed=seed)
    value = model.factor(cycle, path)
    assert 1.0 <= value <= 1.0 + 0.08 * 1.3 + 1e-9


@given(cycles, paths)
def test_temperature_bounded(cycle, path):
    model = TemperatureDriftVariation(amplitude=0.05)
    assert 1.0 <= model.factor(cycle, path) <= 1.05 + 1e-9


@given(st.lists(cycles, min_size=2, max_size=6).map(sorted), paths)
def test_aging_monotone_nondecreasing(sorted_cycles, path):
    model = AgingVariation(max_degradation=0.1,
                           time_constant_cycles=1e6)
    factors = [model.factor(c, path) for c in sorted_cycles]
    assert factors == sorted(factors)
    assert all(1.0 <= f <= 1.1 + 1e-9 for f in factors)


@given(cycles, paths, seeds)
def test_process_time_invariant(cycle, path, seed):
    model = ProcessVariation(seed=seed)
    assert model.factor(cycle, path) == model.factor(cycle + 1234, path)


@given(cycles, paths,
       st.lists(st.floats(min_value=0.5, max_value=2.0,
                          allow_nan=False), min_size=1, max_size=4))
def test_composite_is_product(cycle, path, constants):
    models = [ConstantVariation(c) for c in constants]
    composite = CompositeVariation(models)
    expected = 1.0
    for c in constants:
        expected *= c
    assert abs(composite.factor(cycle, path) - expected) < 1e-9


@settings(max_examples=20, deadline=None)
@given(seeds)
def test_local_distribution_statistics(seed):
    model = LocalVariation(sigma=0.05, seed=seed)
    samples = [model.factor(c, "p") for c in range(600)]
    mean = sum(samples) / len(samples)
    assert 0.95 < mean < 1.05
