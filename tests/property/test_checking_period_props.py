"""Property-based tests for checking-period arithmetic."""

from hypothesis import assume, given, strategies as st

from repro.core.checking_period import CheckingPeriod, IntervalKind

periods = st.integers(min_value=100, max_value=100_000)
percents = st.floats(min_value=1.0, max_value=50.0,
                     allow_nan=False, allow_infinity=False)
intervals = st.integers(min_value=1, max_value=8)


@st.composite
def checking_periods(draw):
    period = draw(periods)
    percent = draw(percents)
    k = draw(intervals)
    tb = draw(st.integers(min_value=0, max_value=k - 1))
    try:
        cp = CheckingPeriod(period, percent, num_intervals=k, num_tb=tb)
    except Exception:
        assume(False)
        raise  # unreachable; keeps type checkers happy
    assume(cp.interval_ps > 0)
    return cp


@given(checking_periods())
def test_intervals_partition_checking_period(cp):
    assert cp.tb_ps + cp.ed_ps == cp.num_intervals * cp.interval_ps
    # Integer division may shave a remainder, never add one.
    assert 0 <= cp.checking_ps - cp.num_intervals * cp.interval_ps \
        < cp.num_intervals


@given(checking_periods())
def test_margin_is_one_interval(cp):
    assert cp.recovered_margin_ps == cp.interval_ps
    assert cp.recovered_margin_ps <= cp.checking_ps


@given(checking_periods())
def test_interval_kinds_ordered_tb_then_ed(cp):
    kinds = [cp.interval_kind(i) for i in range(1, cp.num_intervals + 1)]
    if IntervalKind.ED in kinds:
        first_ed = kinds.index(IntervalKind.ED)
        assert all(k is IntervalKind.TB for k in kinds[:first_ed])
        assert all(k is IntervalKind.ED for k in kinds[first_ed:])
    assert kinds.count(IntervalKind.TB) == cp.num_tb


@given(checking_periods())
def test_flagging_monotone_in_interval_index(cp):
    flags = [cp.flags_on_interval(i)
             for i in range(1, cp.num_intervals + 1)]
    # Once flagging starts it never stops at deeper intervals.
    assert flags == sorted(flags)


@given(checking_periods())
def test_consolidation_budget_at_least_half_cycle(cp):
    assert cp.consolidation_budget_ps() >= cp.period_ps // 2


@given(checking_periods(), st.integers(min_value=0, max_value=1000))
def test_hold_constraint_exceeds_checking_period(cp, hold):
    assert cp.min_short_path_delay_ps(hold) == hold + cp.checking_ps


@given(periods, percents)
def test_with_tb_recovers_two_thirds_of_without(period, percent):
    try:
        with_tb = CheckingPeriod.with_tb(period, percent)
        without = CheckingPeriod.without_tb(period, percent)
    except Exception:
        assume(False)
        raise
    assume(with_tb.interval_ps > 0 and without.interval_ps > 0)
    ratio = (with_tb.recovered_margin_percent
             / without.recovered_margin_percent)
    assert abs(ratio - 2.0 / 3.0) < 1e-9
