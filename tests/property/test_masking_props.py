"""Property-based tests for capture/masking semantics.

The central safety invariants of the paper:

* no scheme ever flags a *false* error (flag implies a real violation,
  except canary, whose flag is a prediction);
* TIMBER never silently corrupts state within its select-covered window;
* borrowing never exceeds the checking period;
* the latch borrows exactly the lateness, the flip-flop a whole number
  of intervals.
"""

from hypothesis import assume, given, strategies as st

from repro.core.checking_period import CheckingPeriod
from repro.core.masking import (
    canary_capture,
    plain_ff_capture,
    razor_capture,
    timber_ff_capture,
    timber_latch_capture,
)

latenesses = st.integers(min_value=-2000, max_value=2000)
selects = st.integers(min_value=0, max_value=6)


@st.composite
def checking_periods(draw):
    period = draw(st.integers(min_value=200, max_value=50_000))
    percent = draw(st.floats(min_value=2.0, max_value=50.0,
                             allow_nan=False))
    k = draw(st.integers(min_value=1, max_value=4))
    tb = draw(st.integers(min_value=0, max_value=k - 1))
    try:
        cp = CheckingPeriod(period, percent, num_intervals=k, num_tb=tb)
    except Exception:
        assume(False)
        raise
    assume(cp.interval_ps > 0)
    return cp


class TestTimberFF:
    @given(latenesses, selects, checking_periods())
    def test_no_false_flags(self, lateness, select, cp):
        outcome = timber_ff_capture(lateness, select, cp)
        if outcome.flagged:
            assert lateness > 0

    @given(latenesses, selects, checking_periods())
    def test_exactly_one_of_clean_masked_failed(self, lateness, select, cp):
        outcome = timber_ff_capture(lateness, select, cp)
        states = [outcome.masked, outcome.failed,
                  (not outcome.masked and not outcome.failed)]
        assert sum(states) == 1

    @given(latenesses, selects, checking_periods())
    def test_borrow_is_whole_intervals_within_checking(self, lateness,
                                                       select, cp):
        outcome = timber_ff_capture(lateness, select, cp)
        if outcome.masked:
            assert outcome.borrowed_ps % cp.interval_ps == 0
            assert outcome.borrowed_ps <= cp.checking_ps
            assert outcome.borrowed_ps >= lateness

    @given(latenesses, selects, checking_periods())
    def test_correct_state_unless_failed(self, lateness, select, cp):
        outcome = timber_ff_capture(lateness, select, cp)
        assert outcome.correct_state == (not outcome.failed)

    @given(st.data(), checking_periods())
    def test_covered_window_never_fails(self, data, cp):
        """With the select relayed to its maximum, any violation within
        the interval-covered window is masked."""
        covered = cp.num_intervals * cp.interval_ps
        lateness = data.draw(st.integers(min_value=1, max_value=covered))
        outcome = timber_ff_capture(lateness, cp.num_intervals - 1, cp)
        assert outcome.masked and not outcome.failed

    @given(latenesses, selects, checking_periods())
    def test_higher_select_never_hurts(self, lateness, select, cp):
        """Masking is monotone in the select: if a violation is masked
        at select s, it is masked at s+1 too."""
        low = timber_ff_capture(lateness, select, cp)
        high = timber_ff_capture(lateness, select + 1, cp)
        if low.masked:
            assert high.masked


class TestTimberLatch:
    @given(latenesses, checking_periods())
    def test_no_false_flags(self, lateness, cp):
        outcome = timber_latch_capture(lateness, cp)
        if outcome.flagged:
            assert lateness > cp.tb_ps

    @given(latenesses, checking_periods())
    def test_borrow_equals_lateness(self, lateness, cp):
        outcome = timber_latch_capture(lateness, cp)
        if outcome.masked:
            assert outcome.borrowed_ps == lateness

    @given(st.data(), checking_periods())
    def test_whole_checking_period_masked(self, data, cp):
        lateness = data.draw(
            st.integers(min_value=1, max_value=cp.checking_ps))
        assert timber_latch_capture(lateness, cp).masked

    @given(st.data(), checking_periods())
    def test_latch_borrows_no_more_than_ff(self, data, cp):
        """Continuous borrowing is never worse than discrete: for the
        same masked violation the latch delays the next stage by at most
        the flip-flop's rounded-up interval borrow."""
        lateness = data.draw(
            st.integers(min_value=1, max_value=cp.interval_ps))
        latch = timber_latch_capture(lateness, cp)
        ff = timber_ff_capture(lateness, 0, cp)
        assert latch.masked and ff.masked
        assert latch.borrowed_ps <= ff.borrowed_ps


class TestBaselines:
    @given(latenesses)
    def test_plain_fails_iff_late(self, lateness):
        outcome = plain_ff_capture(lateness)
        assert outcome.failed == (lateness > 0)

    @given(latenesses, st.integers(min_value=1, max_value=1000))
    def test_razor_detection_window(self, lateness, window):
        outcome = razor_capture(lateness, window)
        assert outcome.detected == (0 < lateness <= window)
        if outcome.detected:
            assert not outcome.correct_state  # needs replay

    @given(latenesses, st.integers(min_value=1, max_value=1000))
    def test_canary_never_masks(self, lateness, guard):
        outcome = canary_capture(lateness, guard)
        assert not outcome.masked
        assert outcome.borrowed_ps == 0
        # Prediction keeps state correct; an actual violation does not.
        if outcome.predicted:
            assert outcome.correct_state
