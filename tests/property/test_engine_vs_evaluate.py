"""Property: the event-driven engine settles to the pure evaluation.

Two independent implementations of combinational semantics — the
event-driven inertial-delay engine and the single-pass topological
evaluator — must agree on every settled net value for every input
vector.  This cross-validates the engine's scheduling, priming, and
inertial-delay logic against an implementation with none of those
moving parts.
"""

from hypothesis import given, settings, strategies as st

from repro.circuit.evaluate import evaluate, random_vectors
from repro.circuit.generate import random_stage
from repro.sim.engine import Simulator

stage_params = st.fixed_dictionaries({
    "num_inputs": st.integers(min_value=2, max_value=6),
    "depth": st.integers(min_value=1, max_value=5),
    "width": st.integers(min_value=2, max_value=6),
    "seed": st.integers(min_value=0, max_value=10_000),
    "vector_seed": st.integers(min_value=0, max_value=10_000),
})

#: Generous settle horizon: depth * slowest cell delay, with margin.
SETTLE_PS = 5 * 30 * 4


@settings(max_examples=25, deadline=None)
@given(stage_params)
def test_settled_values_agree(params):
    netlist = random_stage(
        num_inputs=params["num_inputs"],
        num_outputs=min(2, params["width"]),
        depth=params["depth"], width=params["width"],
        seed=params["seed"],
    )
    vector = random_vectors(netlist.primary_inputs, 1,
                            seed=params["vector_seed"])[0]

    reference = evaluate(netlist, vector)

    sim = Simulator()
    for net, value in vector.items():
        sim.set_initial(net, value)
    sim.add_netlist(netlist)
    sim.run(SETTLE_PS)

    for net in netlist.nets:
        assert sim.value(net) is reference[net], (
            f"net {net}: engine={sim.value(net)} "
            f"evaluate={reference[net]}"
        )


@settings(max_examples=15, deadline=None)
@given(stage_params)
def test_second_vector_also_settles(params):
    """Re-driving the inputs mid-run must settle to the new vector's
    evaluation (no stale pending events, no lost updates)."""
    netlist = random_stage(
        num_inputs=params["num_inputs"],
        num_outputs=min(2, params["width"]),
        depth=params["depth"], width=params["width"],
        seed=params["seed"],
    )
    first, second = random_vectors(netlist.primary_inputs, 2,
                                   seed=params["vector_seed"])
    sim = Simulator()
    for net, value in first.items():
        sim.set_initial(net, value)
    sim.add_netlist(netlist)
    sim.run(SETTLE_PS)
    for net, value in second.items():
        sim.drive(net, value, SETTLE_PS + 10)
    sim.run(2 * SETTLE_PS + 10)

    reference = evaluate(netlist, second)
    for capture in netlist.capture_nets:
        assert sim.value(capture) is reference[capture]
