"""Property-based tests for static timing analysis."""

from hypothesis import given, settings, strategies as st

from repro.circuit.generate import random_stage
from repro.timing.paths import enumerate_paths
from repro.timing.sta import (
    register_to_register_delays,
    run_sta,
)

stage_params = st.fixed_dictionaries({
    "num_inputs": st.integers(min_value=2, max_value=6),
    "depth": st.integers(min_value=1, max_value=5),
    "width": st.integers(min_value=2, max_value=8),
    "seed": st.integers(min_value=0, max_value=10_000),
})


def build(params):
    width = params["width"]
    return random_stage(
        num_inputs=params["num_inputs"],
        num_outputs=min(2, width),
        depth=params["depth"],
        width=width,
        seed=params["seed"],
    )


@settings(max_examples=30, deadline=None)
@given(stage_params)
def test_max_arrival_dominates_min_arrival(params):
    netlist = build(params)
    result = run_sta(netlist, 100_000)
    for net in result.max_arrival:
        assert result.max_arrival[net] >= result.min_arrival[net]


@settings(max_examples=30, deadline=None)
@given(stage_params)
def test_gate_output_later_than_inputs(params):
    netlist = build(params)
    result = run_sta(netlist, 100_000)
    for gate in netlist:
        for input_net in gate.inputs:
            assert result.max_arrival[gate.output] >= \
                result.max_arrival.get(input_net, 0) + gate.delay_ps \
                - max(result.max_arrival.get(n, 0)
                      for n in gate.inputs)
        # The defining recurrence: output = max(inputs) + delay.
        assert result.max_arrival[gate.output] == max(
            result.max_arrival.get(n, 0) for n in gate.inputs
        ) + gate.delay_ps


@settings(max_examples=30, deadline=None)
@given(stage_params)
def test_slack_consistent_with_arrival(params):
    netlist = build(params)
    period = 100_000
    result = run_sta(netlist, period, setup_ps=30)
    for capture, slack in result.slack.items():
        assert slack == period - 30 - result.max_arrival[capture]


@settings(max_examples=20, deadline=None)
@given(stage_params)
def test_reg_to_reg_max_equals_sta(params):
    netlist = build(params)
    delays = register_to_register_delays(netlist, clk_to_q_ps=45)
    sta = run_sta(netlist, 100_000, clk_to_q_ps=45)
    for capture in netlist.capture_nets:
        pairs = [d for (_, cap), d in delays.items() if cap == capture]
        if pairs:
            assert max(pairs) == sta.max_arrival[capture]


@settings(max_examples=20, deadline=None)
@given(stage_params)
def test_enumerated_paths_sorted_and_bounded_by_sta(params):
    netlist = build(params)
    paths = enumerate_paths(netlist, 100_000, clk_to_q_ps=45)
    sta = run_sta(netlist, 100_000, clk_to_q_ps=45)
    per_endpoint_best: dict[str, int] = {}
    for path in paths:
        assert path.delay_ps <= sta.max_arrival[path.capture]
        best = per_endpoint_best.get(path.capture, 0)
        per_endpoint_best[path.capture] = max(best, path.delay_ps)
    # The best enumerated path per endpoint is exactly the STA arrival.
    for capture, best in per_endpoint_best.items():
        assert best == sta.max_arrival[capture]
