"""Property: semantic observability metrics are kernel-independent.

The determinism contract (DESIGN.md, ``repro.obs`` docstring): every
metric outside the ``repro_exec_``/``repro_kernel_`` namespaces whose
name does not end in ``_seconds`` is a pure function of the simulated
work.  A seeded campaign therefore produces a **bit-identical**
:func:`repro.obs.semantic_snapshot` whether the kernels run vectorized
or with ``REPRO_SCALAR_KERNELS=1`` — the TB/ED mask counters, relay
depth histograms, escape counters, and campaign outcome counters must
all agree exactly, because the instrument sites live in the shared
scalar state machines that both execution modes route every
"interesting" cycle through.
"""

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.campaign import CampaignConfig, run_campaign
from repro.kernels import HAVE_NUMPY, SCALAR_ENV

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="no numpy: both paths are already scalar")

CONFIGURATIONS = [
    ("pipeline", "plain"),
    ("pipeline", "timber-ff"),
    ("graph", "timber-ff"),
]


def _semantic_metrics(config: CampaignConfig, *, scalar: bool) -> str:
    saved_scalar = os.environ.get(SCALAR_ENV)
    was_enabled = obs.enabled()
    os.environ[SCALAR_ENV] = "1" if scalar else "0"
    obs.reset()
    obs.enable()
    try:
        run_campaign(config)
        return json.dumps(obs.semantic_snapshot(), sort_keys=True)
    finally:
        if saved_scalar is None:
            os.environ.pop(SCALAR_ENV, None)
        else:
            os.environ[SCALAR_ENV] = saved_scalar
        obs.reset()
        if not was_enabled:
            obs.disable()


@settings(max_examples=10, deadline=None)
@given(
    configuration=st.sampled_from(CONFIGURATIONS),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    num_faults=st.integers(min_value=4, max_value=10),
    num_cycles=st.integers(min_value=60, max_value=120),
)
def test_semantic_snapshot_kernel_independent(configuration, seed,
                                              num_faults, num_cycles):
    target, scheme = configuration
    config = CampaignConfig(
        target=target, scheme=scheme, num_faults=num_faults,
        num_cycles=num_cycles, seed=seed, faults_per_task=4,
    )
    vector = _semantic_metrics(config, scalar=False)
    scalar = _semantic_metrics(config, scalar=True)
    assert vector == scalar


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_semantic_snapshot_repeatable(seed):
    """Two identical runs in one process give identical snapshots."""
    config = CampaignConfig(num_faults=6, num_cycles=80, seed=seed,
                            faults_per_task=3)
    first = _semantic_metrics(config, scalar=False)
    second = _semantic_metrics(config, scalar=False)
    assert first == second
