"""Property: forked evaluation is byte-identical to full runs.

The snapshot-forked evaluator restores the fault-free state at the
nearest stride boundary at or before each fault's cycle and simulates
only the fault's influence window.  Because every sensitization and
variability draw is addressed by absolute cycle and the overlay adds
zero delay before ``spec.cycle``, the encoded :class:`FaultOutcome`
stream must match the full-run reference byte for byte — across
targets, schemes, relay horizons, and snapshot strides, including a
fault landing exactly on a stride boundary.
"""

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.campaign import (
    CampaignConfig,
    FaultSpec,
    fault_runner,
    iter_population,
    run_campaign,
)
from repro.campaign.engine import FULL_RUNS_ENV, FULL_RUN_TARGETS
from repro.exec.cache import encode_result
from repro.kernels import HAVE_NUMPY

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="forked evaluation needs the vector kernels")

#: (target, scheme) pairs the forked evaluator supports.
CONFIGURATIONS = [
    ("pipeline", "plain"),
    ("pipeline", "timber-ff"),
    ("pipeline", "timber-latch"),
    ("graph", "plain"),
    ("graph", "timber-ff"),
    ("graph", "timber-latch"),
]


def _encoded(outcome) -> str:
    return json.dumps(encode_result(outcome), sort_keys=True)


@settings(max_examples=10, deadline=None)
@given(
    configuration=st.sampled_from(CONFIGURATIONS),
    seed=st.integers(min_value=0, max_value=2 ** 16),
    stride=st.sampled_from([1, 32, 64, 150, 400]),
    relay_horizon=st.integers(min_value=1, max_value=8),
)
def test_forked_outcomes_match_full_runs(configuration, seed, stride,
                                         relay_horizon):
    target, scheme = configuration
    config = CampaignConfig(
        target=target, scheme=scheme, num_faults=10, num_cycles=150,
        seed=seed, snapshot_stride=stride, relay_horizon=relay_horizon,
    )
    runner = fault_runner(config)
    assert runner.forked
    reference = FULL_RUN_TARGETS[target]
    for spec in config.iter_population():
        full_outcome, _ = reference(config, spec)
        forked_outcome, _ = runner.evaluate(spec)
        assert _encoded(forked_outcome) == _encoded(full_outcome), spec


@settings(max_examples=6, deadline=None)
@given(
    configuration=st.sampled_from(CONFIGURATIONS),
    seed=st.integers(min_value=0, max_value=2 ** 16),
    stride=st.sampled_from([25, 64, 100]),
    kind=st.sampled_from(["seu", "delay", "droop"]),
)
def test_fault_on_stride_boundary_matches(configuration, seed, stride,
                                          kind):
    # The fork point for cycle == stride is the snapshot AT that cycle:
    # a zero-cycle fault-free prefix.  This exercises the boundary
    # between "restore and immediately inject" and "advance first".
    target, scheme = configuration
    config = CampaignConfig(
        target=target, scheme=scheme, num_faults=2, num_cycles=300,
        seed=seed, snapshot_stride=stride,
    )
    spec = FaultSpec(fault_id=0, kind=kind, site=config.sites()[0],
                     cycle=stride, duration_cycles=2, magnitude_ps=180)
    runner = fault_runner(config)
    start, _ = runner.trajectory.fork_point(spec.cycle)
    assert start == stride
    full_outcome, _ = FULL_RUN_TARGETS[target](config, spec)
    forked_outcome, _ = runner.evaluate(spec)
    assert _encoded(forked_outcome) == _encoded(full_outcome)


@settings(max_examples=6, deadline=None)
@given(
    configuration=st.sampled_from(CONFIGURATIONS),
    seed=st.integers(min_value=0, max_value=2 ** 16),
    stride=st.sampled_from([40, 256]),
    faults_per_task=st.sampled_from([4, 7, 12]),
)
def test_campaign_reports_independent_of_fork_path(configuration, seed,
                                                   stride,
                                                   faults_per_task):
    # End-to-end: the whole campaign (chunked through the exec layer,
    # outcomes scattered back to population order) must not depend on
    # whether faults ran forked or as full runs.
    target, scheme = configuration
    config = CampaignConfig(
        target=target, scheme=scheme, num_faults=12, num_cycles=150,
        faults_per_task=faults_per_task, seed=seed,
        snapshot_stride=stride,
    )
    saved = os.environ.get(FULL_RUNS_ENV)
    os.environ[FULL_RUNS_ENV] = "1"
    try:
        reference = run_campaign(config)
    finally:
        if saved is None:
            os.environ.pop(FULL_RUNS_ENV, None)
        else:
            os.environ[FULL_RUNS_ENV] = saved
    forked = run_campaign(config)
    assert _encoded(forked.outcomes) == _encoded(reference.outcomes)
    assert _encoded(forked.report) == _encoded(reference.report)


@settings(max_examples=12, deadline=None)
@given(
    num_faults=st.integers(min_value=1, max_value=60),
    start=st.integers(min_value=0, max_value=60),
    seed=st.integers(min_value=0, max_value=2 ** 16),
)
def test_population_streaming_is_chunk_invariant(num_faults, start,
                                                 seed):
    # Counter-based seeding: any [start, stop) slice of the stream is
    # byte-identical to the same slice of the full population.
    start = min(start, num_faults)
    kwargs = dict(sites=["s0", "s1", "s2"], num_cycles=200, seed=seed)
    full = list(iter_population(num_faults=num_faults, **kwargs))
    tail = list(iter_population(num_faults=num_faults, start=start,
                                **kwargs))
    assert tail == full[start:]
    assert _encoded(tail) == _encoded(full[start:])
