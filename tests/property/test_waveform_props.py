"""Property-based tests for waveform reconstruction."""

from hypothesis import given, strategies as st

from repro.circuit.logic import Logic
from repro.sim.waveform import Waveform

values = st.sampled_from([Logic.ZERO, Logic.ONE, Logic.X])


@st.composite
def traces(draw):
    """A monotone sequence of (time, value) change points."""
    count = draw(st.integers(min_value=0, max_value=50))
    deltas = draw(st.lists(st.integers(min_value=1, max_value=100),
                           min_size=count, max_size=count))
    times = []
    current = 0
    for delta in deltas:
        current += delta
        times.append(current)
    vals = draw(st.lists(values, min_size=count, max_size=count))
    initial = draw(values)
    return initial, list(zip(times, vals))


@given(traces())
def test_value_at_reconstructs_trace(trace):
    initial, points = trace
    wave = Waveform("s", initial=initial)
    for t, v in points:
        wave.record(t, v)
    # Before the first change: initial.
    first = points[0][0] if points else 1
    assert wave.value_at(first - 1) is initial
    # At and between change points: the most recent value.
    for index, (t, v) in enumerate(points):
        assert wave.value_at(t) is v
        next_t = points[index + 1][0] if index + 1 < len(points) else t + 10
        assert wave.value_at(next_t - 1) is v


@given(traces())
def test_edges_alternate_values(trace):
    initial, points = trace
    wave = Waveform("s", initial=initial)
    for t, v in points:
        wave.record(t, v)
    edges = wave.edges()
    previous = initial
    for edge in edges:
        assert edge.old is previous
        assert edge.new is not edge.old
        previous = edge.new
    assert wave.final_value() is previous


@given(traces())
def test_rising_plus_falling_bounded_by_edges(trace):
    initial, points = trace
    wave = Waveform("s", initial=initial)
    for t, v in points:
        wave.record(t, v)
    edges = wave.edges()
    rising = wave.rising_edges()
    falling = wave.falling_edges()
    assert len(rising) + len(falling) <= len(edges)
    # Rising and falling edge times are disjoint.
    assert not set(rising) & set(falling)


@given(traces())
def test_edge_times_strictly_increasing(trace):
    initial, points = trace
    wave = Waveform("s", initial=initial)
    for t, v in points:
        wave.record(t, v)
    times = [e.time_ps for e in wave.edges()]
    assert times == sorted(set(times))
