"""Property: lane-batched evaluation is byte-identical to forking.

The batched evaluator groups a chunk's faults by shared fork window and
advances whole groups through a vectorized borrow/select/relay machine;
lanes it cannot prove equivalent (non-idle fork state, noisy background
prefix, oversized window, no array semantics for the policy) drop to
the per-fault forked path.  Whatever mix of paths a chunk takes, the
encoded :class:`FaultOutcome` stream must match both the forked
evaluator and the full-run reference byte for byte — across targets,
schemes, snapshot strides, and relay horizons, including forced
all-replay fallbacks and faults on stride boundaries.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.campaign import CampaignConfig, FaultSpec
from repro.campaign.engine import (
    FULL_RUN_TARGETS,
    _BatchedEvaluator,
    _ForkedEvaluator,
    _window_end,
)
from repro.exec.cache import encode_result
from repro.kernels import HAVE_NUMPY
from repro.kernels.fault_batch import MAX_LANE_WINDOW

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="lane batching needs the vector kernels")

#: (target, scheme) pairs with a batched lane machine.
CONFIGURATIONS = [
    ("pipeline", "plain"),
    ("pipeline", "timber-ff"),
    ("pipeline", "timber-latch"),
    ("pipeline", "razor"),
    ("pipeline", "canary"),
    ("graph", "plain"),
    ("graph", "timber-ff"),
    ("graph", "timber-latch"),
]


def _encoded(outcome) -> str:
    return json.dumps(encode_result(outcome), sort_keys=True)


@settings(max_examples=10, deadline=None)
@given(
    configuration=st.sampled_from(CONFIGURATIONS),
    seed=st.integers(min_value=0, max_value=2 ** 16),
    stride=st.sampled_from([1, 32, 64, 150, 400]),
    relay_horizon=st.integers(min_value=1, max_value=8),
)
def test_batched_chunk_matches_forked_and_full_runs(
        configuration, seed, stride, relay_horizon):
    target, scheme = configuration
    config = CampaignConfig(
        target=target, scheme=scheme, num_faults=12, num_cycles=150,
        seed=seed, snapshot_stride=stride, relay_horizon=relay_horizon,
    )
    specs = config.population()
    batched = _BatchedEvaluator(config)
    assert batched.batched and batched.forked
    batched_outcomes, batched_work = batched.evaluate_chunk(specs)
    forked_outcomes, forked_work = (
        _ForkedEvaluator(config).evaluate_chunk(specs))
    assert _encoded(batched_outcomes) == _encoded(forked_outcomes)
    assert batched_work == forked_work
    reference = FULL_RUN_TARGETS[target]
    for spec, outcome in zip(specs, batched_outcomes):
        full_outcome, _ = reference(config, spec)
        assert _encoded(outcome) == _encoded(full_outcome), spec
    assert (batched.lanes_batched + batched.lanes_replayed
            == len(specs))


@settings(max_examples=8, deadline=None)
@given(
    configuration=st.sampled_from(CONFIGURATIONS),
    seed=st.integers(min_value=0, max_value=2 ** 16),
    stride=st.sampled_from([25, 64, 100]),
    kind=st.sampled_from(["seu", "delay", "droop"]),
)
def test_stride_boundary_fault_matches(configuration, seed, stride,
                                       kind):
    # cycle == stride forks from the snapshot AT the injection cycle: a
    # zero-length quiet prefix, the batching precondition's edge case.
    target, scheme = configuration
    config = CampaignConfig(
        target=target, scheme=scheme, num_faults=2, num_cycles=300,
        seed=seed, snapshot_stride=stride,
    )
    spec = FaultSpec(fault_id=0, kind=kind, site=config.sites()[0],
                     cycle=stride, duration_cycles=2, magnitude_ps=180)
    batched = _BatchedEvaluator(config)
    start, _ = batched.trajectory.fork_point(spec.cycle)
    assert start == stride
    full_outcome, _ = FULL_RUN_TARGETS[target](config, spec)
    batched_outcome, _ = batched.evaluate(spec)
    assert _encoded(batched_outcome) == _encoded(full_outcome)


@settings(max_examples=6, deadline=None)
@given(
    configuration=st.sampled_from([
        ("pipeline", "timber-ff"),
        ("graph", "timber-ff"),
        ("graph", "timber-latch"),
    ]),
    seed=st.integers(min_value=0, max_value=2 ** 16),
)
def test_oversized_windows_fall_back_and_still_match(configuration,
                                                     seed):
    # A relay horizon past MAX_LANE_WINDOW makes every lane's window
    # too long to batch: the evaluator must replay everything through
    # the forked path and still match it byte for byte.
    target, scheme = configuration
    config = CampaignConfig(
        target=target, scheme=scheme, num_faults=8, num_cycles=300,
        seed=seed, snapshot_stride=64,
        relay_horizon=MAX_LANE_WINDOW + 40,
    )
    specs = config.population()
    batched = _BatchedEvaluator(config)
    batched_outcomes, _ = batched.evaluate_chunk(specs)
    # Late faults clamp their window at num_cycles and may still fit
    # the lane cap; everything with an oversized window must replay.
    oversized = sum(
        1 for spec in specs
        if _window_end(config, spec) + 1 - spec.cycle > MAX_LANE_WINDOW)
    assert oversized > 0
    assert batched.lanes_replayed >= oversized
    assert batched.lanes_batched <= len(specs) - oversized
    forked_outcomes, _ = _ForkedEvaluator(config).evaluate_chunk(specs)
    assert _encoded(batched_outcomes) == _encoded(forked_outcomes)


@settings(max_examples=8, deadline=None)
@given(
    configuration=st.sampled_from(CONFIGURATIONS),
    seed=st.integers(min_value=0, max_value=2 ** 16),
    stride=st.sampled_from([32, 256]),
)
def test_chunk_walk_equals_per_fault_evaluation(configuration, seed,
                                                stride):
    # evaluate_chunk groups lanes; evaluate() runs one-spec groups.
    # Group size must never leak into an outcome.
    target, scheme = configuration
    config = CampaignConfig(
        target=target, scheme=scheme, num_faults=10, num_cycles=200,
        seed=seed, snapshot_stride=stride,
    )
    specs = config.population()
    chunked, _ = _BatchedEvaluator(config).evaluate_chunk(specs)
    single = _BatchedEvaluator(config)
    singles = [single.evaluate(spec)[0] for spec in specs]
    assert _encoded(chunked) == _encoded(singles)
