"""Property-based tests for useful-skew scheduling and the OR-tree."""

import math

from hypothesis import given, settings, strategies as st

from repro.core.ortree import build_or_tree
from repro.timing.graph import TimingGraph
from repro.timing.skew import schedule_useful_skew, skewed_graph


@st.composite
def connected_graphs(draw):
    """Random graphs where every FF has fanin and fanout (so skew can
    move), built as a randomly-weighted ring plus chords."""
    num_ffs = draw(st.integers(min_value=3, max_value=20))
    period = 1000
    graph = TimingGraph("g", period)
    for index in range(num_ffs):
        graph.add_ff(f"f{index}")
    for index in range(num_ffs):
        delay = draw(st.integers(min_value=100, max_value=period))
        graph.add_edge(f"f{index}", f"f{(index + 1) % num_ffs}", delay)
    num_chords = draw(st.integers(min_value=0, max_value=10))
    for _ in range(num_chords):
        src = draw(st.integers(min_value=0, max_value=num_ffs - 1))
        dst = draw(st.integers(min_value=0, max_value=num_ffs - 1))
        delay = draw(st.integers(min_value=100, max_value=period))
        graph.add_edge(f"f{src}", f"f{dst}", delay)
    return graph


@settings(max_examples=40, deadline=None)
@given(connected_graphs(), st.integers(min_value=0, max_value=300))
def test_skew_never_hurts_worst_slack(graph, bound):
    schedule = schedule_useful_skew(graph, max_skew_ps=bound)
    assert schedule.worst_slack_after_ps >= \
        schedule.worst_slack_before_ps


@settings(max_examples=40, deadline=None)
@given(connected_graphs(), st.integers(min_value=0, max_value=300))
def test_offsets_respect_bound(graph, bound):
    schedule = schedule_useful_skew(graph, max_skew_ps=bound)
    assert all(abs(s) <= bound for s in schedule.offsets.values())


@settings(max_examples=40, deadline=None)
@given(connected_graphs(), st.integers(min_value=0, max_value=300))
def test_min_feasible_period_consistent_with_slack(graph, bound):
    schedule = schedule_useful_skew(graph, max_skew_ps=bound)
    # period - worst_slack == critical effective delay (setup = 0).
    assert schedule.min_feasible_period_ps() == \
        graph.period_ps - schedule.worst_slack_after_ps


@settings(max_examples=40, deadline=None)
@given(connected_graphs(), st.integers(min_value=0, max_value=200))
def test_folded_graph_clamps_to_period(graph, bound):
    schedule = schedule_useful_skew(graph, max_skew_ps=bound)
    folded = skewed_graph(graph, schedule)
    for edge in folded.edges():
        assert 0 <= edge.delay_ps <= graph.period_ps


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=1, max_value=5000),
       st.integers(min_value=2, max_value=8))
def test_or_tree_structure(num_inputs, fanin):
    tree = build_or_tree(num_inputs, fanin=fanin)
    if num_inputs == 1:
        assert tree.depth == 0 and tree.num_gates == 0
        return
    # Depth is the ceil log, computed in exact integer arithmetic
    # (float log(125, 5) rounds just above 3.0 and would overshoot).
    expected_depth = 0
    reach = 1
    while reach < num_inputs:
        reach *= fanin
        expected_depth += 1
    assert tree.depth == expected_depth
    assert tree.num_gates >= math.ceil((num_inputs - 1) / (fanin - 1))
    assert tree.latency_ps == tree.depth * (
        tree.gate_delay_ps + tree.wire_delay_per_level_ps)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=2, max_value=5000))
def test_or_tree_monotone_in_inputs(num_inputs):
    small = build_or_tree(num_inputs)
    large = build_or_tree(num_inputs * 2)
    assert large.num_gates >= small.num_gates
    assert large.depth >= small.depth
