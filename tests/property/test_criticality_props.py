"""Property tests pinning ``CriticalityIndex`` to the naive scans.

The index is a pure performance structure: every query must agree with
the pre-index scan-per-call implementations (preserved as the
``naive_*`` executable specification in ``repro.timing.criticality``)
on any graph, including threshold-boundary delays and graphs with no
critical edges at all.
"""

from hypothesis import given, settings, strategies as st

from repro.core.relay import relay_cost
from repro.timing import criticality as crit
from repro.timing.graph import TimingGraph

PERIOD = 1000


@st.composite
def random_graphs(draw):
    """Random multigraphs, biased toward threshold-boundary delays.

    Thresholds for the sampled percents land exactly on round delay
    values (e.g. 900 for 10% of a 1000 ps period), so drawing delays
    from a pool that includes those values exercises the ``>=``
    boundary on both sides.
    """
    num_ffs = draw(st.integers(min_value=2, max_value=20))
    graph = TimingGraph("g", PERIOD)
    for index in range(num_ffs):
        graph.add_ff(f"f{index}")
    boundary_pool = st.sampled_from(
        (0, 100, 500, 600, 750, 899, 900, 901, 950, 999, 1000))
    delays = st.one_of(st.integers(min_value=0, max_value=PERIOD),
                       boundary_pool)
    num_edges = draw(st.integers(min_value=0, max_value=60))
    for _ in range(num_edges):
        src = draw(st.integers(min_value=0, max_value=num_ffs - 1))
        dst = draw(st.integers(min_value=0, max_value=num_ffs - 1))
        graph.add_edge(f"f{src}", f"f{dst}", draw(delays))
    return graph


PERCENTS = st.one_of(
    st.sampled_from((0.05, 10.0, 25.0, 40.0, 50.0, 100.0)),
    st.floats(min_value=0.01, max_value=100.0,
              allow_nan=False, allow_infinity=False),
)


@settings(max_examples=60, deadline=None)
@given(random_graphs(), PERCENTS)
def test_index_matches_naive_reference(graph, percent):
    # Low percents often select *no* edges — the empty-view case.
    assert graph.critical_threshold_ps(percent) == \
        crit.critical_threshold_ps(PERIOD, percent)
    assert graph.critical_edges(percent) == \
        crit.naive_critical_edges(graph, percent)
    assert graph.critical_endpoints(percent) == \
        crit.naive_critical_endpoints(graph, percent)
    assert graph.critical_startpoints(percent) == \
        crit.naive_critical_startpoints(graph, percent)
    assert graph.critical_through_ffs(percent) == \
        crit.naive_critical_through_ffs(graph, percent)
    for ff in graph.ffs:
        assert graph.critical_fanin_count(ff, percent) == \
            crit.naive_critical_fanin_count(graph, ff, percent)


@settings(max_examples=60, deadline=None)
@given(random_graphs(), PERCENTS)
def test_view_relay_adjacency_matches_naive_scan(graph, percent):
    """The relay map equals the simulator's old per-FF rescan."""
    view = graph.criticality().view(percent)
    threshold = graph.critical_threshold_ps(percent)
    protected = crit.naive_critical_endpoints(graph, percent)
    for ff in graph.ffs:
        expected = sorted({
            e.src for e in graph.in_edges(ff)
            if e.delay_ps >= threshold and e.src in protected
        })
        assert list(view.relay_srcs.get(ff, ())) == expected


@settings(max_examples=40, deadline=None)
@given(random_graphs(), PERCENTS)
def test_relay_cost_matches_naive_fanin_accounting(graph, percent):
    cost = relay_cost(graph, percent)
    fanins = crit.naive_relay_inputs(graph, percent)
    assert cost.num_protected_ffs == len(fanins)
    assert cost.num_relayed_inputs == sum(fanins.values())
    assert cost.worst_fanin == max(fanins.values(), default=0)
    assert cost.num_max_nodes == sum(
        fanin - 1 for fanin in fanins.values() if fanin > 1)
