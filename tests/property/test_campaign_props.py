"""Property: campaign outcomes are kernel-independent.

The fault-campaign engine degrades from the numpy kernels to scalar
replay for injected cycles; clean cycles may still run vectorized.  The
taxonomy must not depend on which path executed: a campaign run with
``REPRO_SCALAR_KERNELS=1`` must produce *byte-identical* encoded
outcomes to the default (vectorized) run — the same classification, the
same capture events, the same lateness numbers, for every fault.
"""

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.campaign import CampaignConfig, run_campaign
from repro.exec.cache import encode_result
from repro.kernels import HAVE_NUMPY, SCALAR_ENV

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="no numpy: both paths are already scalar")

#: (target, scheme) pairs with a vectorizable clean-cycle path.
CONFIGURATIONS = [
    ("pipeline", "plain"),
    ("pipeline", "timber-ff"),
    ("pipeline", "timber-latch"),
    ("graph", "plain"),
    ("graph", "timber-ff"),
]


def _encoded_outcomes(config: CampaignConfig, *, scalar: bool) -> str:
    saved = os.environ.get(SCALAR_ENV)
    os.environ[SCALAR_ENV] = "1" if scalar else "0"
    try:
        result = run_campaign(config)
    finally:
        if saved is None:
            os.environ.pop(SCALAR_ENV, None)
        else:
            os.environ[SCALAR_ENV] = saved
    return json.dumps(encode_result(result.outcomes), sort_keys=True)


@settings(max_examples=8, deadline=None)
@given(
    configuration=st.sampled_from(CONFIGURATIONS),
    seed=st.integers(min_value=0, max_value=2 ** 16),
    checking=st.sampled_from([20.0, 30.0, 40.0]),
)
def test_scalar_and_vector_campaigns_bit_identical(configuration, seed,
                                                   checking):
    target, scheme = configuration
    config = CampaignConfig(
        target=target, scheme=scheme, num_faults=12, num_cycles=150,
        faults_per_task=6, checking_percent=checking, seed=seed,
    )
    assert _encoded_outcomes(config, scalar=True) == \
        _encoded_outcomes(config, scalar=False)
