"""Property-based tests for relay algebra and graph criticality."""

from hypothesis import given, settings, strategies as st

from repro.core.relay import relay_cost
from repro.timing.graph import TimingGraph


@st.composite
def random_graphs(draw):
    num_ffs = draw(st.integers(min_value=2, max_value=30))
    period = 1000
    graph = TimingGraph("g", period)
    for index in range(num_ffs):
        graph.add_ff(f"f{index}")
    num_edges = draw(st.integers(min_value=1, max_value=80))
    for _ in range(num_edges):
        src = draw(st.integers(min_value=0, max_value=num_ffs - 1))
        dst = draw(st.integers(min_value=0, max_value=num_ffs - 1))
        delay = draw(st.integers(min_value=0, max_value=period))
        graph.add_edge(f"f{src}", f"f{dst}", delay)
    return graph


@settings(max_examples=50, deadline=None)
@given(random_graphs(), st.floats(min_value=1, max_value=50))
def test_through_ffs_subset_of_endpoints_and_startpoints(graph, percent):
    through = graph.critical_through_ffs(percent)
    assert through <= graph.critical_endpoints(percent)
    assert through <= graph.critical_startpoints(percent)


@settings(max_examples=50, deadline=None)
@given(random_graphs(),
       st.floats(min_value=1, max_value=25),
       st.floats(min_value=25, max_value=50))
def test_criticality_monotone_in_threshold(graph, tight, loose):
    assert graph.critical_endpoints(tight) <= \
        graph.critical_endpoints(loose)
    assert set(graph.critical_edges(tight)) <= \
        set(graph.critical_edges(loose))


@settings(max_examples=50, deadline=None)
@given(random_graphs(), st.floats(min_value=1, max_value=50))
def test_relay_cost_invariants(graph, percent):
    cost = relay_cost(graph, percent)
    assert cost.num_through_ffs <= cost.num_protected_ffs
    assert cost.num_max_nodes <= max(0, cost.num_relayed_inputs - 1) \
        or cost.num_max_nodes <= cost.num_relayed_inputs
    assert cost.area >= 0 and cost.leakage >= 0
    assert cost.worst_delay_ps >= 0
    if cost.num_protected_ffs == 0:
        assert cost.area == 0


@settings(max_examples=50, deadline=None)
@given(random_graphs(),
       st.floats(min_value=1, max_value=25),
       st.floats(min_value=25, max_value=50))
def test_relay_cost_monotone_in_threshold(graph, tight, loose):
    assert relay_cost(graph, tight).num_protected_ffs <= \
        relay_cost(graph, loose).num_protected_ffs


@settings(max_examples=50, deadline=None)
@given(random_graphs(), st.floats(min_value=1, max_value=50))
def test_relayed_fanin_bounded_by_in_degree(graph, percent):
    for ff in graph.ffs:
        assert graph.critical_fanin_count(ff, percent) <= \
            len(graph.in_edges(ff))
