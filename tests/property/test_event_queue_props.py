"""Property-based tests for the event queue."""

from hypothesis import given, strategies as st

from repro.circuit.logic import Logic
from repro.sim.events import Event, EventQueue

times = st.lists(st.integers(min_value=0, max_value=10_000),
                 min_size=1, max_size=200)


@given(times)
def test_pops_are_sorted_by_time(time_list):
    queue = EventQueue()
    for t in time_list:
        queue.push(Event(t, signal="s", value=Logic.ONE))
    popped = [queue.pop().time_ps for _ in range(len(time_list))]
    assert popped == sorted(time_list)


@given(times)
def test_len_matches_pushes(time_list):
    queue = EventQueue()
    for t in time_list:
        queue.push(Event(t, signal="s", value=Logic.ONE))
    assert len(queue) == len(time_list)


@given(times, st.data())
def test_cancellation_removes_exactly_those_events(time_list, data):
    queue = EventQueue()
    handles = []
    for index, t in enumerate(time_list):
        handles.append(
            (queue.push(Event(t, signal=f"s{index}", value=Logic.ONE)),
             index, t))
    to_cancel = data.draw(st.sets(
        st.integers(min_value=0, max_value=len(handles) - 1)))
    for position in to_cancel:
        queue.cancel(handles[position][0])
    surviving = sorted(
        (t, index) for handle, index, t in handles
        if index not in to_cancel
    )
    popped = []
    while queue:
        event = queue.pop()
        popped.append((event.time_ps, int(event.signal[1:])))
    assert popped == surviving


@given(times)
def test_equal_times_preserve_insertion_order(time_list):
    queue = EventQueue()
    constant = 42
    for index in range(len(time_list)):
        queue.push(Event(constant, signal=f"s{index}", value=Logic.ONE))
    order = [int(queue.pop().signal[1:]) for _ in range(len(time_list))]
    assert order == sorted(order)


@given(times)
def test_peek_matches_next_pop(time_list):
    queue = EventQueue()
    for t in time_list:
        queue.push(Event(t, signal="s", value=Logic.ONE))
    while queue:
        peeked = queue.peek_time()
        assert queue.pop().time_ps == peeked
    assert queue.peek_time() is None
