"""Property-based tests for pipeline-level invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.checking_period import CheckingPeriod
from repro.pipeline.pipeline import PipelineSimulation
from repro.pipeline.schemes import (
    PlainPolicy,
    TimberFFPolicy,
    TimberLatchPolicy,
)
from repro.pipeline.stage import PipelineStage
from repro.variability import LocalVariation

PERIOD = 1000


@st.composite
def scenarios(draw):
    num_stages = draw(st.integers(min_value=1, max_value=6))
    critical = draw(st.integers(min_value=700, max_value=990))
    prob = draw(st.floats(min_value=0.0, max_value=0.5))
    sigma = draw(st.floats(min_value=0.0, max_value=0.08))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    percent = draw(st.sampled_from([10.0, 20.0, 30.0, 40.0]))
    stages = [
        PipelineStage(name=f"s{i}", critical_delay_ps=critical,
                      typical_delay_ps=int(critical * 0.75),
                      sensitization_prob=prob, seed=seed + i)
        for i in range(num_stages)
    ]
    return stages, LocalVariation(sigma=sigma, seed=seed), percent


@settings(max_examples=30, deadline=None)
@given(scenarios(), st.integers(min_value=1, max_value=300))
def test_capture_accounting_always_sums(scenario, num_cycles):
    stages, variability, percent = scenario
    cp = CheckingPeriod.with_tb(PERIOD, percent)
    sim = PipelineSimulation(stages, TimberFFPolicy(len(stages), cp),
                             period_ps=PERIOD, variability=variability)
    result = sim.run(num_cycles)
    assert result.captures == num_cycles * len(stages)
    assert result.masked_flagged <= result.masked


@settings(max_examples=30, deadline=None)
@given(scenarios(), st.integers(min_value=1, max_value=300))
def test_borrow_never_exceeds_checking_period(scenario, num_cycles):
    stages, variability, percent = scenario
    cp = CheckingPeriod.with_tb(PERIOD, percent)
    sim = PipelineSimulation(stages, TimberLatchPolicy(len(stages), cp),
                             period_ps=PERIOD, variability=variability)
    result = sim.run(num_cycles)
    assert result.max_borrow_ps <= cp.checking_ps


@settings(max_examples=30, deadline=None)
@given(scenarios(), st.integers(min_value=1, max_value=200))
def test_timber_never_fails_more_than_plain(scenario, num_cycles):
    """TIMBER strictly dominates an unprotected design: everything the
    plain design survives, TIMBER survives too."""
    stages, variability, percent = scenario
    cp = CheckingPeriod.with_tb(PERIOD, percent)
    plain = PipelineSimulation(stages, PlainPolicy(len(stages)),
                               period_ps=PERIOD,
                               variability=variability).run(num_cycles)
    timber = PipelineSimulation(stages, TimberLatchPolicy(len(stages), cp),
                                period_ps=PERIOD,
                                variability=variability).run(num_cycles)
    assert timber.failed <= plain.failed


@settings(max_examples=30, deadline=None)
@given(scenarios(), st.integers(min_value=1, max_value=200))
def test_throughput_factor_bounded(scenario, num_cycles):
    stages, variability, percent = scenario
    cp = CheckingPeriod.with_tb(PERIOD, percent)
    sim = PipelineSimulation(stages, TimberFFPolicy(len(stages), cp),
                             period_ps=PERIOD, variability=variability)
    result = sim.run(num_cycles)
    assert 0 < result.throughput_factor <= 1.0
