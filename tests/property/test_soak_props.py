"""Properties of the soak stream: batch equivalence and replayability.

Two contracts pin the soak mode to the batch campaign machinery:

1. **Streaming == batch.**  The estimator state folded from a soak
   journal equals the per-stratum classification counts obtained by
   regenerating every logged draw and evaluating it through the plain
   batch path (``fault_runner`` + ``evaluate_fault``) in one pass —
   the adaptive scheduling changes *which* faults are drawn, never what
   any individual fault does.

2. **Windows replay bit-identically.**  Every journal record can be
   re-derived from its descriptors alone: ``replay_round`` reproduces
   the chained digest and counts, and the sampler weights logged in
   record ``r`` equal the weights recomputed from the estimator state
   after records ``[0, r)``.  Truncating a journal anywhere and
   resuming yields a byte-identical file.
"""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.campaign import CampaignConfig
from repro.campaign.engine import evaluate_fault, fault_runner
from repro.soak import (
    AdaptiveSampler,
    EscapeEstimator,
    SoakConfig,
    SoakJournal,
    replay_round,
    run_soak,
    soak_state_from_journal,
    spec_for_draw,
)

CONFIGURATIONS = [
    ("graph", "timber-ff"),
    ("pipeline", "timber-latch"),
    ("pipeline", "plain"),
]


def _soak(configuration, seed, adaptive=True) -> SoakConfig:
    target, scheme = configuration
    campaign = CampaignConfig(
        target=target, scheme=scheme, num_faults=1, num_cycles=200,
        faults_per_task=8, seed=seed,
    )
    return SoakConfig(campaign=campaign, faults_per_round=18,
                      magnitude_bins=2, adaptive=adaptive)


def _batch_counts(soak: SoakConfig,
                  records: list[dict]) -> dict[str, dict[str, int]]:
    """Evaluate every logged draw through the batch path, in one pass."""
    config = soak.campaign
    strata = {stratum.key: stratum for stratum in soak.strata()}
    runner = fault_runner(config)
    counts: dict[str, dict[str, int]] = {}
    for record in records:
        seq = record["seq_start"]
        for key, counter_start, count in record["draws"]:
            for offset in range(count):
                spec = spec_for_draw(config, strata[key],
                                     counter_start + offset, seq)
                seq += 1
                outcome, _units = evaluate_fault(config, runner, spec)
                row = counts.setdefault(key, {})
                row[outcome.classification] = row.get(
                    outcome.classification, 0) + 1
    return counts


@settings(max_examples=4, deadline=None)
@given(
    configuration=st.sampled_from(CONFIGURATIONS),
    seed=st.integers(min_value=0, max_value=2 ** 16),
    rounds=st.integers(min_value=1, max_value=4),
)
def test_streaming_estimator_matches_batch_evaluation(
        configuration, seed, rounds, tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("soak")
    soak = _soak(configuration, seed)
    result = run_soak(soak, journal_path=tmp_path / "j.jsonl",
                      max_rounds=rounds)
    _header, records = SoakJournal.read(tmp_path / "j.jsonl")
    assert len(records) == rounds

    batch = _batch_counts(soak, records)
    state = soak_state_from_journal(soak, records)
    streamed = {key: row for key, row in state["estimator"].items()
                if row}
    assert streamed == batch
    assert result.total_faults == sum(
        sum(row.values()) for row in batch.values())

    # The reported overall estimate equals the uniform-stratum
    # combination of batch rates: adaptive allocation never biases it.
    keys = [stratum.key for stratum in soak.strata()]
    estimator = EscapeEstimator(keys)
    for key, row in batch.items():
        estimator.update_counts(key, row)
    assert result.overall == estimator.overall()


@settings(max_examples=4, deadline=None)
@given(
    configuration=st.sampled_from(CONFIGURATIONS),
    seed=st.integers(min_value=0, max_value=2 ** 16),
)
def test_every_journal_window_replays_identically(
        configuration, seed, tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("soak")
    soak = _soak(configuration, seed)
    run_soak(soak, journal_path=tmp_path / "j.jsonl", max_rounds=3)
    _header, records = SoakJournal.read(tmp_path / "j.jsonl")
    keys = [stratum.key for stratum in soak.strata()]

    prev_digest = ""
    estimator = EscapeEstimator(keys)
    sampler = AdaptiveSampler(keys, min_weight=soak.min_weight,
                              adaptive=soak.adaptive)
    for record in records:
        # The logged weights are exactly the sampler's output on the
        # estimator state after all prior rounds.
        assert record["weights"] == sampler.weights(estimator)
        replayed = replay_round(soak, record, prev_digest)
        assert replayed["digest"] == record["digest"]
        assert replayed["counts"] == record["counts"]
        prev_digest = record["digest"]
        for key, row in record["counts"].items():
            estimator.update_counts(key, row)


@settings(max_examples=3, deadline=None)
@given(
    configuration=st.sampled_from(CONFIGURATIONS),
    seed=st.integers(min_value=0, max_value=2 ** 16),
    cut=st.integers(min_value=0, max_value=3),
)
def test_resume_from_any_prefix_is_byte_identical(
        configuration, seed, cut, tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("soak")
    soak = _soak(configuration, seed)
    reference = tmp_path / "ref.jsonl"
    run_soak(soak, journal_path=reference, max_rounds=4)
    full = reference.read_bytes()

    # Cut the journal after ``cut`` round records (header kept) and
    # resume: the continuation must land on the same bytes.
    resumed = tmp_path / "cut.jsonl"
    lines = full.splitlines(keepends=True)
    resumed.write_bytes(b"".join(lines[:1 + cut]))
    run_soak(soak, journal_path=resumed, resume=True, max_rounds=4)
    assert resumed.read_bytes() == full


@settings(max_examples=2, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2 ** 16))
def test_adaptive_and_uniform_streams_share_fault_semantics(
        seed, tmp_path_factory):
    """Same config, different sampler: any draw descriptor the two
    streams share resolves to the same spec (sampling is above the
    fault layer, not inside it)."""
    tmp_path = tmp_path_factory.mktemp("soak")
    adaptive = _soak(CONFIGURATIONS[0], seed, adaptive=True)
    uniform = _soak(CONFIGURATIONS[0], seed, adaptive=False)
    run_soak(adaptive, journal_path=tmp_path / "a.jsonl", max_rounds=2)
    run_soak(uniform, journal_path=tmp_path / "u.jsonl", max_rounds=2)
    _h, rec_a = SoakJournal.read(tmp_path / "a.jsonl")
    _h, rec_u = SoakJournal.read(tmp_path / "u.jsonl")
    strata = {stratum.key: stratum for stratum in adaptive.strata()}

    def draw_set(records):
        draws = set()
        for record in records:
            for key, counter_start, count in record["draws"]:
                draws.update((key, counter_start + offset)
                             for offset in range(count))
        return draws

    shared = draw_set(rec_a) & draw_set(rec_u)
    assert shared  # the weight floor guarantees overlap
    for key, counter in sorted(shared):
        spec_a = spec_for_draw(adaptive.campaign, strata[key],
                               counter, 0)
        spec_u = spec_for_draw(uniform.campaign, strata[key],
                               counter, 0)
        assert dataclasses.asdict(spec_a) == dataclasses.asdict(spec_u)
