"""Property: batched warm-worker dispatch never changes results.

The dispatch layer reorders completions, chunks tasks into batches,
shares warm-cached compilations across batch-mates, and retries on the
pool — none of which may leak into results.  For pipeline, graph, and
campaign workloads alike, a batched vectorized run on warm workers must
be *byte-identical* (canonical JSON of the encoded results) to a serial
scalar-mode run: per-task SHA-256 seeding makes every result a pure
function of its task alone, regardless of placement, batching, or which
kernel executed it.
"""

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.campaign import CampaignConfig, run_campaign
from repro.exec import SweepRunner
from repro.exec.cache import encode_result
from repro.kernels import HAVE_NUMPY, SCALAR_ENV

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="no numpy: both paths are already scalar")


def _scalar_env(on: bool):
    saved = os.environ.get(SCALAR_ENV)
    os.environ[SCALAR_ENV] = "1" if on else "0"
    return saved


def _restore_env(saved):
    if saved is None:
        os.environ.pop(SCALAR_ENV, None)
    else:
        os.environ[SCALAR_ENV] = saved


def _both_modes(workload) -> tuple[str, str]:
    """Encoded results of ``workload`` serial-scalar vs batched-vector.

    The batched runner is constructed *inside* the vector-mode window:
    under a fork start method workers snapshot the parent environment at
    pool creation, so the kernel-mode flip must precede it.
    """
    saved = _scalar_env(True)
    try:
        serial = workload(SweepRunner())
    finally:
        _restore_env(saved)
    saved = _scalar_env(False)
    try:
        with SweepRunner(workers=2, batch_target_s=5.0,
                         max_batch=16) as runner:
            batched = workload(runner)
            assert runner.telemetry.batch_sizes, \
                "expected at least one dispatched batch"
    finally:
        _restore_env(saved)
    return (json.dumps(encode_result(serial), sort_keys=True),
            json.dumps(encode_result(batched), sort_keys=True))


@settings(max_examples=5, deadline=None)
@given(
    techniques=st.sets(
        st.sampled_from(["plain", "timber-ff", "timber-latch", "razor"]),
        min_size=2, max_size=3),
    amplitude=st.sampled_from([0.0, 0.04, 0.08]),
    seed=st.integers(min_value=0, max_value=2 ** 16),
)
def test_pipeline_sweep_batched_equals_serial(techniques, amplitude,
                                              seed):
    from repro.analysis.experiments import resilience_sweep

    def workload(runner):
        return resilience_sweep(
            techniques=tuple(sorted(techniques)),
            droop_amplitudes=(0.0, amplitude), num_cycles=400,
            seed=seed, runner=runner)

    serial, batched = _both_modes(workload)
    assert serial == batched


@settings(max_examples=4, deadline=None)
@given(
    scheme=st.sampled_from(["plain", "timber-ff"]),
    seed=st.integers(min_value=0, max_value=2 ** 16),
)
def test_graph_campaign_batched_equals_serial(scheme, seed):
    def workload(runner):
        config = CampaignConfig(
            target="graph", scheme=scheme, num_faults=12,
            num_cycles=120, faults_per_task=3, seed=seed)
        return run_campaign(config, runner=runner).outcomes

    serial, batched = _both_modes(workload)
    assert serial == batched


@settings(max_examples=4, deadline=None)
@given(
    scheme=st.sampled_from(["plain", "timber-ff", "timber-latch"]),
    checking=st.sampled_from([20.0, 30.0]),
    seed=st.integers(min_value=0, max_value=2 ** 16),
)
def test_pipeline_campaign_batched_equals_serial(scheme, checking, seed):
    def workload(runner):
        config = CampaignConfig(
            target="pipeline", scheme=scheme, num_faults=12,
            num_cycles=120, faults_per_task=3,
            checking_percent=checking, seed=seed)
        return run_campaign(config, runner=runner).outcomes

    serial, batched = _both_modes(workload)
    assert serial == batched
