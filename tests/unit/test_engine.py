"""Unit tests for the event-driven simulator core."""

import pytest

from repro.circuit.generate import inverter_chain
from repro.circuit.logic import Logic
from repro.errors import SimulationError
from repro.sim.engine import Simulator


class TestSignals:
    def test_undriven_signal_is_x(self, sim):
        assert sim.value("nothing") is Logic.X

    def test_set_initial(self, sim):
        sim.set_initial("a", 1)
        assert sim.value("a") is Logic.ONE

    def test_drive_applies_at_time(self, sim):
        sim.drive("a", 1, 50)
        sim.run(49)
        assert sim.value("a") is Logic.X
        sim.run(50)
        assert sim.value("a") is Logic.ONE

    def test_drive_in_past_rejected(self, sim):
        sim.run(100)
        with pytest.raises(SimulationError):
            sim.drive("a", 1, 50)

    def test_run_backwards_rejected(self, sim):
        sim.run(100)
        with pytest.raises(SimulationError):
            sim.run(50)


class TestListeners:
    def test_listener_fires_on_change(self, sim):
        seen = []
        sim.on_change("a", lambda s, name, v, t: seen.append((t, v)))
        sim.drive("a", 1, 10)
        sim.drive("a", 0, 20)
        sim.run(30)
        assert seen == [(10, Logic.ONE), (20, Logic.ZERO)]

    def test_redundant_drive_does_not_fire(self, sim):
        seen = []
        sim.set_initial("a", 0)
        sim.on_change("a", lambda s, name, v, t: seen.append(t))
        sim.drive("a", 0, 10)
        sim.run(20)
        assert seen == []

    def test_actions_run_at_scheduled_time(self, sim):
        fired = []
        sim.at(42, lambda s: fired.append(s.now))
        sim.run(100)
        assert fired == [42]

    def test_after_schedules_relative(self, sim):
        fired = []
        sim.at(10, lambda s: s.after(5, lambda s2: fired.append(s2.now)))
        sim.run(100)
        assert fired == [15]

    def test_cancel_action(self, sim):
        fired = []
        handle = sim.at(10, lambda s: fired.append(1))
        sim.cancel(handle)
        sim.run(20)
        assert fired == []


class TestNetlistSimulation:
    def test_inverter_chain_propagates(self, sim):
        chain = inverter_chain(4)
        sim.add_netlist(chain)
        sim.set_initial("in", 0)
        sim.run(1000)  # let the priming settle
        out = chain.capture_nets[0]
        assert sim.value(out) is Logic.ZERO  # even number of inversions
        sim.drive("in", 1, 2000)
        sim.run(3000)
        assert sim.value(out) is Logic.ONE

    def test_propagation_delay_is_sum_of_gates(self, sim):
        chain = inverter_chain(3)
        sim.add_netlist(chain)
        sim.set_initial("in", 0)
        sim.run(1000)
        out = chain.capture_nets[0]
        changes = []
        sim.on_change(out, lambda s, n, v, t: changes.append(t))
        sim.drive("in", 1, 2000)
        sim.run(3000)
        inv = chain.library["INV"].delay_ps
        assert changes == [2000 + 3 * inv]

    def test_inertial_delay_filters_narrow_pulse(self, sim):
        chain = inverter_chain(1)
        sim.add_netlist(chain)
        sim.set_initial("in", 0)
        sim.run(1000)
        out = chain.capture_nets[0]
        changes = []
        sim.on_change(out, lambda s, n, v, t: changes.append((t, v)))
        inv = chain.library["INV"].delay_ps
        # Pulse narrower than the inverter delay: must be swallowed.
        sim.drive("in", 1, 2000)
        sim.drive("in", 0, 2000 + inv - 2)
        sim.run(3000)
        assert changes == []

    def test_wide_pulse_passes(self, sim):
        chain = inverter_chain(1)
        sim.add_netlist(chain)
        sim.set_initial("in", 0)
        sim.run(1000)
        out = chain.capture_nets[0]
        changes = []
        sim.on_change(out, lambda s, n, v, t: changes.append(v))
        inv = chain.library["INV"].delay_ps
        sim.drive("in", 1, 2000)
        sim.drive("in", 0, 2000 + inv + 20)
        sim.run(3000)
        assert changes == [Logic.ZERO, Logic.ONE]

    def test_dynamic_energy_counts_toggles(self, sim):
        chain = inverter_chain(2)
        sim.add_netlist(chain)
        sim.set_initial("in", 0)
        sim.run(1000)
        base = sim.dynamic_energy()
        sim.drive("in", 1, 2000)
        sim.run(3000)
        inv_energy = chain.library["INV"].toggle_energy
        assert sim.dynamic_energy() == pytest.approx(base + 2 * inv_energy)

    def test_runaway_protection(self, sim):
        # A zero-delay oscillator would loop forever; max_events guards.
        def oscillate(s):
            s.drive("a", Logic.ONE if s.value("a") is Logic.ZERO
                    else Logic.ZERO, s.now)
            s.at(s.now, oscillate)
        sim.set_initial("a", 0)
        sim.at(0, oscillate)
        with pytest.raises(SimulationError, match="events"):
            sim.run(10, max_events=1000)


class TestEventGuardPerRun:
    """Regression: the runaway guard must count per run() invocation."""

    def test_split_runs_do_not_trip_guard_cumulatively(self, sim):
        # 60 events total, 20 per segment: a lifetime counter would
        # blow the 25-event cap on the second segment.
        for i in range(60):
            sim.drive("a", i % 2, i + 1)
        sim.run(20, max_events=25)
        sim.run(40, max_events=25)
        sim.run(60, max_events=25)
        assert sim.events_processed == 60

    def test_guard_raises_before_exceeding_cap(self, sim):
        for i in range(10):
            sim.drive("a", i % 2, i + 1)
        with pytest.raises(SimulationError, match="in one run"):
            sim.run(10, max_events=5)
        # Exactly the cap was processed — not one event more.
        assert sim.events_processed == 5

    def test_cap_sized_run_completes(self, sim):
        for i in range(5):
            sim.drive("a", i % 2, i + 1)
        sim.run(10, max_events=5)
        assert sim.events_processed == 5


class TestSettleAccounting:
    """Regression: the X -> known settle is not a toggle."""

    def test_first_drive_from_x_not_counted(self, sim):
        sim.drive("a", 1, 10)   # X -> 1: settle, not a toggle
        sim.drive("a", 0, 20)   # 1 -> 0: a real toggle
        sim.run(30)
        assert sim.toggle_count("a") == 1

    def test_priming_charges_no_energy(self, sim):
        # Settling a netlist out of X must leave dynamic_energy at zero;
        # before the fix every primed gate output charged one toggle.
        chain = inverter_chain(4)
        sim.add_netlist(chain)
        sim.set_initial("in", 0)
        sim.run(1000)
        assert sim.dynamic_energy() == 0.0
        out = chain.capture_nets[0]
        assert sim.toggle_count(out) == 0
        # Real transitions still pay full price afterwards.
        sim.drive("in", 1, 2000)
        sim.run(3000)
        inv_energy = chain.library["INV"].toggle_energy
        assert sim.dynamic_energy() == pytest.approx(4 * inv_energy)

    def test_listeners_still_fire_on_settle(self, sim):
        seen = []
        sim.on_change("a", lambda s, name, v, t: seen.append((t, v)))
        sim.drive("a", 1, 10)
        sim.run(20)
        assert seen == [(10, Logic.ONE)]


class TestDynamicEnergyRunningTotal:
    """``dynamic_energy()`` is a running total, not a ledger re-sum."""

    def test_total_matches_ledger_after_mixed_sequence(self, sim):
        chain = inverter_chain(4)
        sim.add_netlist(chain)
        sim.set_initial("in", 0)
        sim.run(1000)
        # Mixed sequence: energy-free drives on an unconnected signal
        # interleaved with real toggles through the chain.
        sim.drive("loose", 1, 1500)
        sim.drive("in", 1, 2000)
        sim.drive("loose", 0, 2500)
        sim.drive("in", 0, 3000)
        sim.drive("in", 1, 4000)
        sim.run(10_000)
        assert sim.dynamic_energy() > 0.0
        assert sim.dynamic_energy() == pytest.approx(
            sum(sim._toggle_energy.values()))
