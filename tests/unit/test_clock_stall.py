"""Unit tests for the clock-stall masking baseline."""

import pytest

from repro.core.masking import clock_stall_capture
from repro.errors import ConfigurationError
from repro.pipeline.pipeline import PipelineSimulation
from repro.pipeline.schemes import ClockStallPolicy
from repro.pipeline.stage import PipelineStage
from repro.variability import ConstantVariation

WINDOW = 300


class TestCaptureSemantics:
    def test_clean(self):
        assert clock_stall_capture(0, WINDOW, True).correct_state

    def test_stall_masks_when_consolidation_fits(self):
        outcome = clock_stall_capture(100, WINDOW, True)
        assert outcome.masked and outcome.detected and outcome.flagged
        assert outcome.correct_state

    def test_fails_when_consolidation_too_slow(self):
        outcome = clock_stall_capture(100, WINDOW, False)
        assert outcome.failed and outcome.detected
        assert not outcome.correct_state

    def test_beyond_window_fails_regardless(self):
        assert clock_stall_capture(WINDOW + 1, WINDOW, True).failed

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            clock_stall_capture(10, 0, True)


class TestPolicy:
    def make_sim(self, fits=True):
        stages = [
            PipelineStage(name=f"s{i}", critical_delay_ps=950,
                          typical_delay_ps=700, sensitization_prob=1.0)
            for i in range(3)
        ]
        policy = ClockStallPolicy(3, window_ps=WINDOW,
                                  consolidation_fits=fits)
        return PipelineSimulation(stages, policy, period_ps=1000,
                                  variability=ConstantVariation(1.08))

    def test_stall_penalty_charged_per_masked_error(self):
        result = self.make_sim(fits=True).run(10)
        assert result.masked > 0
        assert result.failed == 0
        # One stalled cycle per detection.
        assert result.replay_cycles == result.masked
        assert result.throughput_factor < 1.0

    def test_infeasible_consolidation_corrupts(self):
        result = self.make_sim(fits=False).run(10)
        assert result.failed > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClockStallPolicy(3, window_ps=0)
