"""Unit tests for capture-outcome semantics."""

import pytest

from repro.core.checking_period import CheckingPeriod
from repro.core.masking import (
    canary_capture,
    dcf_capture,
    plain_ff_capture,
    razor_capture,
    timber_ff_capture,
    timber_latch_capture,
)
from repro.errors import ConfigurationError

CP = CheckingPeriod.with_tb(1000, 30)       # t = 100 ps, 1 TB + 2 ED
CP_NO_TB = CheckingPeriod.without_tb(1000, 30)  # t = 150 ps, 2 ED


class TestTimberFF:
    def test_on_time_clean(self):
        outcome = timber_ff_capture(0, 0, CP)
        assert outcome.correct_state and not outcome.masked

    def test_single_stage_tb_masked_silent(self):
        outcome = timber_ff_capture(60, 0, CP)
        assert outcome.masked and not outcome.flagged
        assert outcome.borrowed_intervals == 1
        assert outcome.borrowed_ps == 100  # discrete: full interval

    def test_lateness_beyond_delta_fails_silently(self):
        outcome = timber_ff_capture(150, 0, CP)
        assert outcome.failed and not outcome.correct_state

    def test_relayed_select_masks_two_stage(self):
        outcome = timber_ff_capture(150, 1, CP)
        assert outcome.masked and outcome.flagged
        assert outcome.borrowed_intervals == 2
        assert outcome.borrowed_ps == 200

    def test_third_interval_masks_and_flags(self):
        outcome = timber_ff_capture(250, 2, CP)
        assert outcome.masked and outcome.flagged
        assert outcome.borrowed_intervals == 3

    def test_beyond_checking_period_fails(self):
        outcome = timber_ff_capture(301, 2, CP)
        assert outcome.failed

    def test_select_saturates(self):
        outcome = timber_ff_capture(250, 9, CP)
        assert outcome.masked
        assert outcome.borrowed_intervals == 3

    def test_without_tb_flags_single_stage(self):
        outcome = timber_ff_capture(60, 0, CP_NO_TB)
        assert outcome.masked and outcome.flagged

    def test_exact_boundary_masked(self):
        outcome = timber_ff_capture(100, 0, CP)
        assert outcome.masked

    def test_negative_select_rejected(self):
        with pytest.raises(ConfigurationError):
            timber_ff_capture(10, -1, CP)


class TestTimberLatch:
    def test_on_time_clean(self):
        assert timber_latch_capture(0, CP).correct_state

    def test_tb_arrival_silent_and_exact_borrow(self):
        outcome = timber_latch_capture(60, CP)
        assert outcome.masked and not outcome.flagged
        assert outcome.borrowed_ps == 60  # continuous: exact lateness

    def test_ed_arrival_flagged(self):
        outcome = timber_latch_capture(150, CP)
        assert outcome.masked and outcome.flagged
        assert outcome.borrowed_ps == 150

    def test_boundary_of_tb_not_flagged(self):
        outcome = timber_latch_capture(CP.tb_ps, CP)
        assert outcome.masked and not outcome.flagged

    def test_beyond_checking_fails(self):
        outcome = timber_latch_capture(CP.checking_ps + 1, CP)
        assert outcome.failed

    def test_latch_never_needs_relay(self):
        # A two-stage lateness within the checking period masks with no
        # select state at all.
        outcome = timber_latch_capture(220, CP)
        assert outcome.masked
        assert outcome.borrowed_intervals == 0


class TestPlain:
    def test_clean(self):
        assert plain_ff_capture(0).correct_state

    def test_any_violation_fails(self):
        assert plain_ff_capture(1).failed


class TestRazor:
    def test_clean(self):
        assert razor_capture(0, 300).correct_state

    def test_detected_with_corrupt_state(self):
        outcome = razor_capture(100, 300)
        assert outcome.detected and outcome.flagged
        assert not outcome.correct_state  # needs replay

    def test_beyond_window_fails(self):
        assert razor_capture(301, 300).failed

    def test_window_validation(self):
        with pytest.raises(ConfigurationError):
            razor_capture(10, 0)


class TestCanary:
    def test_comfortably_early_clean(self):
        assert canary_capture(-300, 150).correct_state

    def test_guard_band_predicts_with_correct_state(self):
        outcome = canary_capture(-50, 150)
        assert outcome.predicted and outcome.correct_state

    def test_actual_violation_fails(self):
        assert canary_capture(10, 150).failed

    def test_guard_validation(self):
        with pytest.raises(ConfigurationError):
            canary_capture(0, 0)


class TestDcf:
    def test_masks_within_windows(self):
        outcome = dcf_capture(50, 100, 200)
        assert outcome.masked
        assert outcome.borrowed_ps == 200  # fixed resample delay

    def test_fails_beyond_detector(self):
        assert dcf_capture(150, 100, 200).failed

    def test_fails_beyond_resample(self):
        assert dcf_capture(250, 300, 200).failed

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            dcf_capture(10, 0, 100)
