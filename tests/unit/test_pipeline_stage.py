"""Unit tests for the pipeline stage delay model."""

import pytest

from repro.errors import ConfigurationError
from repro.pipeline.stage import PipelineStage
from repro.variability import ConstantVariation


class TestValidation:
    def test_rejects_zero_critical(self):
        with pytest.raises(ConfigurationError):
            PipelineStage(name="s", critical_delay_ps=0,
                          typical_delay_ps=0)

    def test_rejects_typical_above_critical(self):
        with pytest.raises(ConfigurationError):
            PipelineStage(name="s", critical_delay_ps=500,
                          typical_delay_ps=600)

    def test_rejects_bad_probability(self):
        with pytest.raises(ConfigurationError):
            PipelineStage(name="s", critical_delay_ps=500,
                          typical_delay_ps=400, sensitization_prob=1.5)


class TestSensitization:
    def make(self, prob):
        return PipelineStage(name="s", critical_delay_ps=900,
                             typical_delay_ps=600,
                             sensitization_prob=prob, seed=4)

    def test_always_sensitized(self):
        stage = self.make(1.0)
        assert all(stage.sensitized(c) for c in range(20))

    def test_never_sensitized(self):
        stage = self.make(0.0)
        assert not any(stage.sensitized(c) for c in range(20))

    def test_deterministic(self):
        stage = self.make(0.5)
        draws = [stage.sensitized(c) for c in range(100)]
        assert draws == [stage.sensitized(c) for c in range(100)]

    def test_rate_approximates_probability(self):
        stage = self.make(0.3)
        hits = sum(stage.sensitized(c) for c in range(5000))
        assert hits / 5000 == pytest.approx(0.3, abs=0.03)


class TestDelay:
    def test_sensitized_uses_critical(self):
        stage = PipelineStage(name="s", critical_delay_ps=900,
                              typical_delay_ps=600,
                              sensitization_prob=1.0)
        assert stage.delay_ps(0, ConstantVariation(1.0)) == 900

    def test_unsensitized_uses_typical(self):
        stage = PipelineStage(name="s", critical_delay_ps=900,
                              typical_delay_ps=600,
                              sensitization_prob=0.0)
        assert stage.delay_ps(0, ConstantVariation(1.0)) == 600

    def test_variability_scales(self):
        stage = PipelineStage(name="s", critical_delay_ps=900,
                              typical_delay_ps=600,
                              sensitization_prob=1.0)
        assert stage.delay_ps(0, ConstantVariation(1.1)) == 990
