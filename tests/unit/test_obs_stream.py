"""Unit tests for repro.obs.stream: publisher, reader, spool framing."""

import dataclasses
import json
import time
import types

import pytest

from repro.obs.stream import (
    EVENTS_FILENAME,
    STREAM_SCHEMA_VERSION,
    EventPublisher,
    EventStreamReader,
    StreamCorrupt,
    events_path,
    read_events,
)


@dataclasses.dataclass
class FakeTask:
    key: str = "t0"
    status: str = "done"
    resumed: bool = False
    cached: bool = False
    events_processed: int = 7
    wall_time_s: float = 0.01


def make_publisher(tmp_path, **kwargs):
    kwargs.setdefault("kind", "sweep")
    kwargs.setdefault("heartbeat_s", 60.0)  # quiet during tests
    return EventPublisher(tmp_path / EVENTS_FILENAME, **kwargs)


class TestPublisherFraming:
    def test_header_first_then_monotone_seq(self, tmp_path):
        pub = make_publisher(tmp_path, run_id="r1", meta={"a": 1})
        with pub:
            pub.run_start(total=4, unit="tasks")
            pub.emit("progress", done=1)
            pub.run_end("ok")
        header, events = read_events(tmp_path / EVENTS_FILENAME)
        assert header["type"] == "header"
        assert header["schema"] == STREAM_SCHEMA_VERSION
        assert header["run_id"] == "r1"
        assert header["kind"] == "sweep"
        assert header["meta"] == {"a": 1}
        seqs = [event["seq"] for event in events]
        assert seqs == list(range(1, len(events) + 1))
        assert events[0]["type"] == "run_start"
        assert events[-1]["type"] == "run_end"
        for event in events:
            assert "wall" in event and "mono_ns" in event

    def test_close_with_status_is_noop_after_run_end(self, tmp_path):
        pub = make_publisher(tmp_path)
        pub.open()
        pub.run_start()
        pub.run_end("ok")
        pub.close(status="error")
        _, events = read_events(tmp_path / EVENTS_FILENAME)
        ends = [event for event in events if event["type"] == "run_end"]
        assert len(ends) == 1
        assert ends[0]["status"] == "ok"

    def test_close_with_status_covers_crash_paths(self, tmp_path):
        pub = make_publisher(tmp_path)
        pub.open()
        pub.run_start()
        pub.close(status="error")
        _, events = read_events(tmp_path / EVENTS_FILENAME)
        assert events[-1]["type"] == "run_end"
        assert events[-1]["status"] == "error"

    def test_note_drain_is_deferred_not_immediate(self, tmp_path):
        pub = make_publisher(tmp_path)
        pub.open()
        pub.run_start()
        pub.note_drain(15)
        # Nothing written yet: the handler only sets a field.
        _, events = read_events(tmp_path / EVENTS_FILENAME)
        assert all(event["type"] != "drain" for event in events)
        pub.run_end("drained")
        pub.close()
        _, events = read_events(tmp_path / EVENTS_FILENAME)
        types_ = [event["type"] for event in events]
        assert "drain" in types_
        assert types_.index("drain") < types_.index("run_end")
        drain = next(e for e in events if e["type"] == "drain")
        assert drain["signum"] == 15

    def test_listeners_see_exactly_the_spool_events(self, tmp_path):
        pub = make_publisher(tmp_path)
        seen = []
        pub.add_listener(seen.append)
        with pub:
            pub.run_start(total=1)
            pub.checkpoint(records=1)
            pub.run_end("ok")
        _, events = read_events(tmp_path / EVENTS_FILENAME)
        assert [e["seq"] for e in seen] == [e["seq"] for e in events]
        assert [e["type"] for e in seen] == [e["type"] for e in events]

    def test_file_sink_optional(self):
        pub = EventPublisher(None, kind="sweep", heartbeat_s=60.0)
        seen = []
        pub.add_listener(seen.append)
        with pub:
            pub.run_start()
            pub.run_end("ok")
        assert [event["type"] for event in seen] == ["run_start",
                                                    "run_end"]

    def test_checkpoint_carries_cumulative_total(self, tmp_path):
        pub = make_publisher(tmp_path)
        with pub:
            pub.checkpoint(records=3)
            pub.checkpoint(records=6)
        _, events = read_events(tmp_path / EVENTS_FILENAME)
        totals = [event["total"] for event in events
                  if event["type"] == "checkpoint"]
        assert totals == [1, 2]


class TestTelemetryBridge:
    def test_task_flow_produces_progress(self, tmp_path):
        pub = make_publisher(tmp_path, progress_every_s=0.0)
        telemetry = types.SimpleNamespace(listeners=[])
        pub.attach(telemetry)
        notify = telemetry.listeners[0]
        with pub:
            pub.run_start(total=3)
            notify("start", {"workers": 2, "num_tasks": 3})
            notify("task", FakeTask(key="a"))
            notify("task", FakeTask(key="b", cached=True))
            notify("task", FakeTask(key="c", status="poisoned"))
            notify("finish", {"wall_time_s": 0.5})
            pub.run_end("ok")
        _, events = read_events(tmp_path / EVENTS_FILENAME)
        types_ = [event["type"] for event in events]
        assert "phase_start" in types_
        assert "phase_end" in types_
        assert "quarantine" in types_
        last_progress = [e for e in events if e["type"] == "progress"][-1]
        assert last_progress["done"] == 3
        assert last_progress["executed"] == 1
        assert last_progress["cached"] == 1
        assert last_progress["poisoned"] == 1
        assert last_progress["workers"] == 2
        assert last_progress["events_processed"] == 7

    def test_track_phases_false_suppresses_phase_events(self, tmp_path):
        pub = make_publisher(tmp_path, progress_every_s=0.0)
        telemetry = types.SimpleNamespace(listeners=[])
        pub.attach(telemetry, track_phases=False)
        notify = telemetry.listeners[0]
        with pub:
            notify("start", {"workers": 1, "num_tasks": 5})
            notify("finish", {"wall_time_s": 0.1})
        _, events = read_events(tmp_path / EVENTS_FILENAME)
        types_ = [event["type"] for event in events]
        assert "phase_start" not in types_
        assert "phase_end" not in types_

    def test_retry_and_crash_events_carry_cumulative_totals(
            self, tmp_path):
        pub = make_publisher(tmp_path)
        telemetry = types.SimpleNamespace(listeners=[])
        pub.attach(telemetry)
        notify = telemetry.listeners[0]
        with pub:
            notify("retry", {"key": "a", "error": "boom",
                             "backoff_s": 0.0})
            notify("retry", {"key": "b", "error": "boom",
                             "backoff_s": 0.1})
            notify("crash", {"key": "c", "error": "dead"})
        _, events = read_events(tmp_path / EVENTS_FILENAME)
        retries = [e for e in events if e["type"] == "retry"]
        assert [event["total"] for event in retries] == [1, 2]
        crash = next(e for e in events if e["type"] == "crash")
        assert crash["total"] == 1

    def test_close_detaches_listener(self, tmp_path):
        pub = make_publisher(tmp_path)
        telemetry = types.SimpleNamespace(listeners=[])
        pub.attach(telemetry)
        pub.open()
        pub.close()
        assert telemetry.listeners == []


class TestHeartbeat:
    def test_heartbeat_fills_idle_gaps(self, tmp_path):
        pub = EventPublisher(tmp_path / EVENTS_FILENAME, kind="soak",
                             heartbeat_s=0.1)
        with pub:
            pub.run_start()
            time.sleep(0.4)
        _, events = read_events(tmp_path / EVENTS_FILENAME)
        assert any(event["type"] == "heartbeat" for event in events)


class TestReader:
    def write_spool(self, path, events):
        with open(path, "wb") as handle:
            for event in events:
                handle.write(json.dumps(event).encode() + b"\n")

    def header(self, **kwargs):
        base = {"type": "header", "schema": STREAM_SCHEMA_VERSION,
                "run_id": "r", "kind": "sweep", "heartbeat_s": 5.0}
        base.update(kwargs)
        return base

    def test_incremental_poll(self, tmp_path):
        path = tmp_path / EVENTS_FILENAME
        self.write_spool(path, [self.header(),
                                {"seq": 1, "type": "run_start"}])
        reader = EventStreamReader(path)
        first = reader.poll()
        assert [event["type"] for event in first] == ["run_start"]
        assert reader.header["run_id"] == "r"
        with open(path, "ab") as handle:
            handle.write(json.dumps({"seq": 2, "type": "run_end"})
                         .encode() + b"\n")
        second = reader.poll()
        assert [event["type"] for event in second] == ["run_end"]
        assert reader.poll() == []
        assert reader.last_seq == 2

    def test_torn_tail_is_left_pending(self, tmp_path):
        path = tmp_path / EVENTS_FILENAME
        self.write_spool(path, [self.header(),
                                {"seq": 1, "type": "run_start"}])
        with open(path, "ab") as handle:
            handle.write(b'{"seq": 2, "type": "prog')
        reader = EventStreamReader(path)
        assert [e["seq"] for e in reader.poll()] == [1]
        # The writer was not dead after all: it finishes the line.
        with open(path, "ab") as handle:
            handle.write(b'ress"}\n')
        assert [e["seq"] for e in reader.poll()] == [2]

    def test_torn_terminated_tail_is_pending_too(self, tmp_path):
        # A line that ends in \n but is still unparseable may be the
        # crash artefact itself (buffered halves flushed separately).
        path = tmp_path / EVENTS_FILENAME
        self.write_spool(path, [self.header()])
        with open(path, "ab") as handle:
            handle.write(b'{"seq": 1, "type": "trunc\n')
        reader = EventStreamReader(path)
        assert reader.poll() == []

    def test_midfile_damage_raises(self, tmp_path):
        path = tmp_path / EVENTS_FILENAME
        self.write_spool(path, [self.header()])
        with open(path, "ab") as handle:
            handle.write(b"garbage\n")
            handle.write(json.dumps({"seq": 2, "type": "run_end"})
                         .encode() + b"\n")
        with pytest.raises(StreamCorrupt):
            EventStreamReader(path).poll()

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / EVENTS_FILENAME
        self.write_spool(path, [{"seq": 1, "type": "run_start"}])
        with pytest.raises(StreamCorrupt):
            EventStreamReader(path).poll()

    def test_wrong_schema_raises(self, tmp_path):
        path = tmp_path / EVENTS_FILENAME
        self.write_spool(path, [self.header(schema=99)])
        with pytest.raises(StreamCorrupt):
            EventStreamReader(path).poll()

    def test_seq_gaps_are_counted(self, tmp_path):
        path = tmp_path / EVENTS_FILENAME
        self.write_spool(path, [self.header(),
                                {"seq": 1, "type": "run_start"},
                                {"seq": 5, "type": "run_end"}])
        reader = EventStreamReader(path)
        reader.poll()
        assert reader.dropped == 3

    def test_missing_file_polls_empty(self, tmp_path):
        reader = EventStreamReader(tmp_path / "nope.jsonl")
        assert reader.poll() == []
        assert reader.header is None


class TestEventsPath:
    def test_direct_file(self, tmp_path):
        spool = tmp_path / EVENTS_FILENAME
        spool.write_text("")
        assert events_path(spool) == spool

    def test_run_dir(self, tmp_path):
        spool = tmp_path / EVENTS_FILENAME
        spool.write_text("")
        assert events_path(tmp_path) == spool

    def test_nested_obs_dir(self, tmp_path):
        (tmp_path / "obs").mkdir()
        spool = tmp_path / "obs" / EVENTS_FILENAME
        spool.write_text("")
        assert events_path(tmp_path) == spool

    def test_missing_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            events_path(tmp_path / "absent")
