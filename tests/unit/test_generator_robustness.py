"""Robustness of the processor generator across seeds and sizes.

The Fig.-1 calibration must not be an artefact of the default seed or
graph size: the anchored endpoint fractions and the through-FF minority
property have to hold for any reasonable instantiation.
"""

import pytest

from repro.processor.generator import (
    generate_processor,
    measured_endpoint_fractions,
)
from repro.processor.perfpoints import MEDIUM_PERFORMANCE


class TestSeedRobustness:
    @pytest.mark.parametrize("seed", [1, 777, 424242])
    def test_anchors_hold_for_any_seed(self, seed):
        graph = generate_processor(MEDIUM_PERFORMANCE, seed=seed)
        measured = measured_endpoint_fractions(graph)
        for percent, target in zip(
                (10.0, 20.0, 30.0, 40.0),
                MEDIUM_PERFORMANCE.endpoint_fractions):
            assert measured[percent] == pytest.approx(target, abs=0.04)

    @pytest.mark.parametrize("seed", [1, 777])
    def test_through_minority_for_any_seed(self, seed):
        graph = generate_processor(MEDIUM_PERFORMANCE, seed=seed)
        endpoints = graph.critical_endpoints(20.0)
        through = graph.critical_through_ffs(20.0)
        assert len(through) / len(endpoints) < 0.5


class TestSizeRobustness:
    @pytest.mark.parametrize("stages,ffs", [(4, 100), (8, 150), (12, 60)])
    def test_anchors_hold_for_any_shape(self, stages, ffs):
        graph = generate_processor(MEDIUM_PERFORMANCE,
                                   num_stages=stages,
                                   ffs_per_stage=ffs, seed=3)
        measured = measured_endpoint_fractions(graph)
        # Smaller graphs carry more sampling noise: widen the band.
        for percent, target in zip(
                (20.0, 30.0, 40.0),
                MEDIUM_PERFORMANCE.endpoint_fractions[1:]):
            assert measured[percent] == pytest.approx(target, abs=0.07)

    def test_fanin_does_not_break_anchors(self):
        graph = generate_processor(MEDIUM_PERFORMANCE, fanin=3, seed=9)
        measured = measured_endpoint_fractions(graph)
        assert measured[20.0] == pytest.approx(
            MEDIUM_PERFORMANCE.endpoint_fractions[1], abs=0.05)
