"""Unit tests for static timing analysis."""

import pytest

from repro.circuit.cells import default_library
from repro.circuit.generate import inverter_chain, random_stage
from repro.circuit.netlist import Netlist
from repro.errors import AnalysisError
from repro.timing.sta import (
    netlist_to_timing_graph,
    register_to_register_delays,
    run_sta,
)


@pytest.fixture
def diamond():
    """a -> (short inv path | long 3-inv path) -> NAND2 -> out."""
    netlist = Netlist("diamond", default_library())
    netlist.add_input("a", registered=True)
    netlist.add_gate("i1", "INV", ["a"], "n1")
    netlist.add_gate("i2", "INV", ["n1"], "n2")
    netlist.add_gate("i3", "INV", ["n2"], "n3")
    netlist.add_gate("s1", "INV", ["a"], "m1")
    netlist.add_gate("join", "NAND2", ["n3", "m1"], "out")
    netlist.add_output("out", registered=True)
    return netlist


class TestArrivalTimes:
    def test_max_takes_long_branch(self, diamond):
        result = run_sta(diamond, 1000, clk_to_q_ps=0, setup_ps=0)
        inv = diamond.library["INV"].delay_ps
        nand = diamond.library["NAND2"].delay_ps
        assert result.max_arrival["out"] == 3 * inv + nand

    def test_min_takes_short_branch(self, diamond):
        result = run_sta(diamond, 1000, clk_to_q_ps=0, setup_ps=0)
        inv = diamond.library["INV"].delay_ps
        nand = diamond.library["NAND2"].delay_ps
        assert result.min_arrival["out"] == inv + nand

    def test_clk_to_q_added_at_launch(self, diamond):
        with_q = run_sta(diamond, 1000, clk_to_q_ps=45, setup_ps=0)
        without = run_sta(diamond, 1000, clk_to_q_ps=0, setup_ps=0)
        assert with_q.max_arrival["out"] == without.max_arrival["out"] + 45


class TestSlack:
    def test_slack_formula(self, diamond):
        result = run_sta(diamond, 1000, clk_to_q_ps=45, setup_ps=30)
        assert result.slack["out"] == 1000 - 30 - result.max_arrival["out"]

    def test_meets_timing(self, diamond):
        assert run_sta(diamond, 1000).meets_timing()
        assert not run_sta(diamond, 60).meets_timing()

    def test_worst_slack_and_critical_net(self, diamond):
        result = run_sta(diamond, 1000)
        assert result.worst_slack == result.slack["out"]
        assert result.critical_capture_net == "out"

    def test_no_captures_raises(self):
        netlist = Netlist("empty", default_library())
        netlist.add_input("a", registered=True)
        result = run_sta(netlist, 1000)
        with pytest.raises(AnalysisError):
            _ = result.worst_slack


class TestRegisterToRegister:
    def test_chain_single_pair(self):
        chain = inverter_chain(4)
        delays = register_to_register_delays(chain, clk_to_q_ps=45)
        inv = chain.library["INV"].delay_ps
        assert delays == {("in", chain.capture_nets[0]): 45 + 4 * inv}

    def test_random_stage_all_pairs_reachable(self):
        stage = random_stage(num_inputs=4, num_outputs=3, depth=3, width=6,
                             seed=5)
        delays = register_to_register_delays(stage)
        # Every capture net must be reachable from at least one input.
        captured = {capture for (_, capture) in delays}
        assert captured == set(stage.capture_nets)

    def test_pairwise_max_consistent_with_sta(self):
        stage = random_stage(num_inputs=4, num_outputs=3, depth=4, width=6,
                             seed=8)
        delays = register_to_register_delays(stage, clk_to_q_ps=45)
        sta = run_sta(stage, 10_000, clk_to_q_ps=45)
        for capture in stage.capture_nets:
            per_pair_max = max(
                delay for (_, cap), delay in delays.items()
                if cap == capture
            )
            assert per_pair_max == sta.max_arrival[capture]


class TestGraphReduction:
    def test_netlist_to_timing_graph(self):
        chain = inverter_chain(4)
        graph = netlist_to_timing_graph(chain, 1000, clk_to_q_ps=45)
        assert graph.num_ffs == 2
        assert graph.num_edges == 1
        inv = chain.library["INV"].delay_ps
        edge = next(iter(graph.edges()))
        assert edge.delay_ps == 45 + 4 * inv
