"""Unit tests for the parametric cell library."""

import pytest

from repro.circuit.cells import Cell, CellLibrary, default_library
from repro.circuit.logic import Logic
from repro.errors import ConfigurationError

Z, O, X = Logic.ZERO, Logic.ONE, Logic.X


@pytest.fixture(scope="module")
def lib():
    return default_library()


class TestCellValidation:
    def test_rejects_zero_inputs(self):
        with pytest.raises(ConfigurationError):
            Cell("BAD", 0, 10, 1.0, 1.0, 1.0, lambda v: v[0])

    def test_rejects_negative_delay(self):
        with pytest.raises(ConfigurationError):
            Cell("BAD", 1, -5, 1.0, 1.0, 1.0, lambda v: v[0])

    def test_rejects_negative_cost(self):
        with pytest.raises(ConfigurationError):
            Cell("BAD", 1, 5, -1.0, 1.0, 1.0, lambda v: v[0])

    def test_output_checks_arity(self, lib):
        with pytest.raises(ConfigurationError):
            lib["NAND2"].output([O])


class TestDefaultLibraryFunctions:
    @pytest.mark.parametrize("cell,inputs,expected", [
        ("INV", [O], Z), ("INV", [Z], O), ("BUF", [O], O),
        ("NAND2", [O, O], Z), ("NAND2", [Z, O], O),
        ("NAND3", [O, O, O], Z), ("NAND4", [O, O, O, Z], O),
        ("NOR2", [Z, Z], O), ("NOR2", [O, Z], Z),
        ("NOR3", [Z, Z, Z], O),
        ("AND2", [O, O], O), ("OR2", [Z, O], O),
        ("XOR2", [O, Z], O), ("XOR2", [O, O], Z),
        ("XNOR2", [O, O], O),
        ("AOI21", [O, O, Z], Z), ("AOI21", [Z, Z, Z], O),
        ("MUX2", [O, Z, Z], O), ("MUX2", [O, Z, O], Z),
        ("DLY4", [O], O),
    ])
    def test_truth_tables(self, lib, cell, inputs, expected):
        assert lib[cell].output(inputs) is expected

    def test_x_handling_controlling_input(self, lib):
        # A controlling 0 on a NAND determines the output despite an X.
        assert lib["NAND2"].output([Z, X]) is O

    def test_x_handling_non_controlling(self, lib):
        assert lib["NAND2"].output([O, X]) is X


class TestLibraryStructure:
    def test_duplicate_cell_rejected(self, lib):
        with pytest.raises(ConfigurationError):
            lib.add(Cell("INV", 1, 10, 1.0, 1.0, 1.0, lambda v: ~v[0]))

    def test_unknown_cell_raises_keyerror(self, lib):
        with pytest.raises(KeyError, match="NOPE"):
            lib["NOPE"]

    def test_contains(self, lib):
        assert "NAND2" in lib
        assert "NOPE" not in lib

    def test_unknown_sequential_raises(self, lib):
        with pytest.raises(KeyError, match="NOPE"):
            lib.sequential("NOPE")

    def test_cell_names_sorted(self, lib):
        names = lib.cell_names
        assert names == sorted(names)
        assert "INV" in names

    def test_fresh_library_is_empty(self):
        fresh = CellLibrary("empty")
        assert fresh.cell_names == []
        assert fresh.sequential_names == []


class TestPaperRatios:
    """The power ratios Sec. 6 of the paper reports must hold."""

    def test_timber_ff_is_2x_dff_power(self, lib):
        dff = lib.sequential("DFF")
        timber = lib.sequential("TIMBER_FF")
        assert timber.energy_per_cycle == pytest.approx(
            2.0 * dff.energy_per_cycle)

    def test_timber_latch_is_1p5x_dff_power(self, lib):
        dff = lib.sequential("DFF")
        latch = lib.sequential("TIMBER_LATCH")
        assert latch.energy_per_cycle == pytest.approx(
            1.5 * dff.energy_per_cycle)

    def test_timber_elements_cost_more_area_than_dff(self, lib):
        dff = lib.sequential("DFF")
        assert lib.sequential("TIMBER_FF").area > dff.area
        assert lib.sequential("TIMBER_LATCH").area > dff.area

    def test_latch_cheaper_than_ff(self, lib):
        ff = lib.sequential("TIMBER_FF")
        latch = lib.sequential("TIMBER_LATCH")
        assert latch.energy_per_cycle < ff.energy_per_cycle
        assert latch.area < ff.area
