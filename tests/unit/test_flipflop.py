"""Unit tests for the conventional D flip-flop model."""

import pytest

from repro.circuit.logic import Logic
from repro.sequential.base import TimingCheck
from repro.sequential.flipflop import DFlipFlop
from repro.sim.clocks import ClockGenerator
from repro.sim.engine import Simulator

PERIOD = 1000


@pytest.fixture
def ff_sim():
    sim = Simulator()
    ClockGenerator(sim, "clk", PERIOD)
    sim.set_initial("d", 0)
    ff = DFlipFlop(sim, name="ff", d="d", clk="clk", q="q")
    return sim, ff


class TestSampling:
    def test_samples_on_rising_edge(self, ff_sim):
        sim, ff = ff_sim
        sim.drive("d", 1, 500)  # mid-cycle, well before next edge
        sim.run(PERIOD + 100)
        assert ff.last_sample() is Logic.ONE
        assert sim.value("q") is Logic.ONE

    def test_q_delayed_by_clk_to_q(self, ff_sim):
        sim, ff = ff_sim
        changes = []
        sim.on_change("q", lambda s, n, v, t: changes.append((t, v)))
        sim.drive("d", 1, 500)
        sim.run(PERIOD + 100)
        assert (PERIOD + ff.clk_to_q_ps, Logic.ONE) in changes

    def test_late_arrival_misses_the_edge(self, ff_sim):
        sim, ff = ff_sim
        sim.drive("d", 1, PERIOD + 50)  # after the edge + hold window
        sim.run(PERIOD + 200)
        assert ff.last_sample() is Logic.ZERO

    def test_sample_history_grows_per_edge(self, ff_sim):
        sim, ff = ff_sim
        sim.run(3 * PERIOD + 10)
        assert len(ff.sample_history) == 4  # edges at 0, T, 2T, 3T


class TestMetastability:
    def test_setup_violation_gives_x(self, ff_sim):
        sim, ff = ff_sim
        # Change inside the setup aperture (30 ps) before the edge at T.
        sim.drive("d", 1, PERIOD - 10)
        sim.run(PERIOD + 100)
        assert ff.last_sample() is Logic.X
        assert sim.value("q") is Logic.X

    def test_hold_violation_corrupts_sample(self, ff_sim):
        sim, ff = ff_sim
        # Change inside the hold window (15 ps) after the edge at T.
        sim.drive("d", 1, PERIOD + 5)
        sim.run(PERIOD + 200)
        assert ff.last_sample() is Logic.X

    def test_clean_sample_just_outside_setup(self, ff_sim):
        sim, ff = ff_sim
        sim.drive("d", 1, PERIOD - 31)  # one ps outside the aperture
        sim.run(PERIOD + 100)
        assert ff.last_sample() is Logic.ONE

    def test_custom_timing_check(self):
        sim = Simulator()
        ClockGenerator(sim, "clk", PERIOD)
        sim.set_initial("d", 0)
        ff = DFlipFlop(sim, name="ff", d="d", clk="clk", q="q",
                       timing=TimingCheck(setup_ps=100, hold_ps=0))
        sim.drive("d", 1, PERIOD - 60)
        sim.run(PERIOD + 100)
        assert ff.last_sample() is Logic.X
