"""Unit tests for the design cost model."""

import pytest

from repro.errors import ConfigurationError
from repro.power.models import DesignCostModel, DesignCosts
from repro.timing.graph import TimingGraph


@pytest.fixture
def graph():
    g = TimingGraph("t", 1000)
    for index in range(10):
        g.add_ff(f"f{index}")
    for index in range(9):
        g.add_edge(f"f{index}", f"f{index + 1}", 800)
    return g


class TestDesignCosts:
    def test_total_power(self):
        costs = DesignCosts(area=10, leakage=4, dynamic_per_cycle=6)
        assert costs.total_power == 10

    def test_scaled(self):
        costs = DesignCosts(10, 4, 6).scaled(2)
        assert costs.area == 20 and costs.leakage == 8

    def test_plus(self):
        total = DesignCosts(1, 2, 3).plus(DesignCosts(4, 5, 6))
        assert (total.area, total.leakage, total.dynamic_per_cycle) == \
            (5, 7, 9)


class TestCostModel:
    def test_sequential_costs_scale_with_count(self):
        model = DesignCostModel()
        one = model.sequential_costs("DFF", 1)
        ten = model.sequential_costs("DFF", 10)
        assert ten.area == pytest.approx(10 * one.area)
        assert ten.total_power == pytest.approx(10 * one.total_power)

    def test_sequential_delta_matches_ratio(self):
        model = DesignCostModel()
        delta = model.sequential_delta("DFF", "TIMBER_FF", 1)
        dff = model.sequential_costs("DFF", 1)
        # 2x energy means the dynamic delta equals the DFF dynamic cost.
        assert delta.dynamic_per_cycle == pytest.approx(
            dff.dynamic_per_cycle)

    def test_baseline_includes_combinational(self, graph):
        model = DesignCostModel()
        base = model.baseline_costs(graph)
        seq = model.sequential_costs("DFF", graph.num_ffs)
        assert base.total_power > seq.total_power
        assert base.area == pytest.approx(
            seq.area + model.comb_area_per_ff * graph.num_ffs)

    def test_sequential_power_fraction_reasonable(self, graph):
        model = DesignCostModel()
        fraction = model.sequential_power_fraction(graph)
        # Flip-flops typically draw 10-40% of total power.
        assert 0.05 < fraction < 0.5

    def test_activity_validation(self):
        with pytest.raises(ConfigurationError):
            DesignCostModel(ff_activity=0.0)

    def test_negative_comb_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            DesignCostModel(comb_area_per_ff=-1.0)
