"""Unit tests for hold constraints and short-path padding."""

import pytest

from repro.circuit.cells import default_library
from repro.circuit.netlist import Netlist
from repro.errors import AnalysisError
from repro.timing.constraints import (
    apply_hold_padding,
    hold_padding_plan,
    min_delay_by_capture,
)
from repro.timing.sta import run_sta


@pytest.fixture
def short_and_long():
    """One short (1 buffer) and one long (4 inverters) capture path."""
    netlist = Netlist("mix", default_library())
    netlist.add_input("a", registered=True)
    netlist.add_gate("b0", "BUF", ["a"], "short")
    current = "a"
    for index in range(4):
        gate = netlist.add_gate(f"i{index}", "INV", [current],
                                f"n{index}")
        current = gate.output
    netlist.add_output("short", registered=True)
    netlist.add_output(current, registered=True)
    return netlist


class TestMinDelay:
    def test_min_delays(self, short_and_long):
        minimums = min_delay_by_capture(short_and_long, clk_to_q_ps=0)
        lib = short_and_long.library
        assert minimums["short"] == lib["BUF"].delay_ps
        assert minimums["n3"] == 4 * lib["INV"].delay_ps


class TestPaddingPlan:
    def test_plan_covers_shortfall(self, short_and_long):
        plan = hold_padding_plan(short_and_long, hold_ps=15,
                                 checking_ps=300, clk_to_q_ps=0)
        by_net = {fix.capture_net: fix for fix in plan.fixes}
        short_fix = by_net["short"]
        assert short_fix.buffers > 0
        assert short_fix.min_delay_ps + short_fix.padding_ps >= \
            short_fix.required_ps

    def test_unprotected_endpoints_need_only_hold(self, short_and_long):
        plan = hold_padding_plan(
            short_and_long, hold_ps=15, checking_ps=300,
            protected_captures={"n3"}, clk_to_q_ps=0,
        )
        by_net = {fix.capture_net: fix for fix in plan.fixes}
        # "short" is unprotected: its 20 ps buffer already beats hold.
        assert by_net["short"].buffers == 0

    def test_zero_checking_means_plain_hold(self, short_and_long):
        plan = hold_padding_plan(short_and_long, hold_ps=15,
                                 checking_ps=0, clk_to_q_ps=0)
        assert plan.total_buffers == 0

    def test_aggregates(self, short_and_long):
        plan = hold_padding_plan(short_and_long, hold_ps=15,
                                 checking_ps=300, clk_to_q_ps=0)
        assert plan.total_area == pytest.approx(
            plan.total_buffers * plan.buffer_area)
        assert plan.endpoints_fixed >= 1

    def test_negative_hold_rejected(self, short_and_long):
        with pytest.raises(AnalysisError):
            hold_padding_plan(short_and_long, hold_ps=-1, checking_ps=0)


class TestApplyPadding:
    def test_padding_fixes_hold(self, short_and_long):
        hold, checking = 15, 300
        plan = hold_padding_plan(short_and_long, hold_ps=hold,
                                 checking_ps=checking, clk_to_q_ps=0)
        renames = apply_hold_padding(short_and_long, plan)
        minimums = min_delay_by_capture(short_and_long, clk_to_q_ps=0)
        for capture in short_and_long.capture_nets:
            assert minimums[capture] >= hold + checking
        assert renames["short"] != "short"

    def test_padding_does_not_break_max_delay_of_other_paths(
            self, short_and_long):
        before = run_sta(short_and_long, 10_000, clk_to_q_ps=0,
                         setup_ps=0).max_arrival["n3"]
        plan = hold_padding_plan(short_and_long, hold_ps=15,
                                 checking_ps=300, clk_to_q_ps=0)
        apply_hold_padding(short_and_long, plan)
        after = run_sta(short_and_long, 10_000, clk_to_q_ps=0, setup_ps=0)
        # The long path itself may gain buffers, but its original net's
        # arrival must be unchanged (buffers were appended after it).
        assert after.max_arrival["n3"] == before

    def test_netlist_still_valid(self, short_and_long):
        plan = hold_padding_plan(short_and_long, hold_ps=15,
                                 checking_ps=300, clk_to_q_ps=0)
        apply_hold_padding(short_and_long, plan)
        short_and_long.validate()
