"""Unit tests for the soft-edge flip-flop baseline."""

import pytest

from repro.circuit.logic import Logic
from repro.core.masking import soft_edge_capture
from repro.errors import ConfigurationError
from repro.pipeline.schemes import SoftEdgePolicy
from repro.sequential.softedge import SoftEdgeFlipFlop
from repro.sim.clocks import ClockGenerator
from repro.sim.engine import Simulator

PERIOD = 1000
WINDOW = 120


@pytest.fixture
def ssim():
    sim = Simulator()
    ClockGenerator(sim, "clk", PERIOD)
    sim.set_initial("d", 0)
    ff = SoftEdgeFlipFlop(sim, name="se", d="d", clk="clk", q="q",
                          window_ps=WINDOW)
    return sim, ff


class TestBehaviouralElement:
    def test_on_time_capture(self, ssim):
        sim, ff = ssim
        sim.drive("d", 1, 500)
        sim.run(2 * PERIOD)
        assert sim.value("q") is Logic.ONE
        assert ff.borrow_count == 0

    def test_window_borrow_silent(self, ssim):
        sim, ff = ssim
        sim.drive("d", 1, PERIOD + 80)
        sim.run(2 * PERIOD)
        assert sim.value("q") is Logic.ONE
        assert ff.borrow_count == 1
        assert ff.borrows[0].borrowed_ps == 80

    def test_beyond_window_silently_lost(self, ssim):
        sim, ff = ssim
        sim.drive("d", 1, PERIOD + WINDOW + 40)
        sim.run(2 * PERIOD)
        assert sim.value("q") is Logic.ZERO  # missed, and nobody knows

    def test_no_error_signal_exists(self, ssim):
        sim, ff = ssim
        # The element exposes no err output at all — observability is
        # the structural difference from TIMBER.
        assert not hasattr(ff, "err")

    def test_validation(self, sim):
        with pytest.raises(ConfigurationError):
            SoftEdgeFlipFlop(sim, name="se", d="d", clk="clk", q="q",
                             window_ps=0)


class TestCaptureSemantics:
    def test_clean(self):
        assert soft_edge_capture(0, WINDOW).correct_state

    def test_masked_without_flag(self):
        outcome = soft_edge_capture(80, WINDOW)
        assert outcome.masked
        assert not outcome.flagged
        assert outcome.borrowed_ps == 80

    def test_failed_beyond_window(self):
        assert soft_edge_capture(WINDOW + 1, WINDOW).failed

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            soft_edge_capture(10, 0)


class TestPolicy:
    def test_policy_masks_and_never_flags(self):
        policy = SoftEdgePolicy(3, window_ps=WINDOW)
        outcome = policy.capture(0, 80)
        assert outcome.masked and not outcome.flagged
        assert policy.max_borrowable_ps() == WINDOW

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            SoftEdgePolicy(3, window_ps=0)
