"""Unit tests for the fault-campaign engine."""

import dataclasses
import json

import pytest

from repro.campaign import (
    BENIGN,
    ESCAPED,
    FALSE_POSITIVE,
    MASKED_ED,
    MASKED_TB,
    OUTCOME_CLASSES,
    RELAYED,
    CampaignConfig,
    CaptureEvent,
    FaultOverlay,
    FaultSpec,
    build_report,
    classify_events,
    generate_population,
    render_reports,
    run_campaign,
    write_campaign_bench,
)
from repro.campaign.engine import campaign_chunk_task, run_one_fault
from repro.errors import ConfigurationError


def _population(**overrides):
    defaults = dict(num_faults=40, sites=["s0", "s1", "s2"],
                    num_cycles=200, seed=11)
    defaults.update(overrides)
    return generate_population(**defaults)


class TestPopulation:
    def test_deterministic(self):
        assert _population() == _population()

    def test_counter_based_slicing(self):
        # Fault i depends only on (seed, i): a bigger population is a
        # strict superset, so chunked regeneration in workers agrees.
        small = _population(num_faults=10)
        large = _population(num_faults=40)
        assert large[:10] == small

    def test_seed_changes_population(self):
        assert _population(seed=12) != _population()

    def test_windows_fit_in_run(self):
        for spec in _population(num_faults=200):
            assert 1 <= spec.cycle
            assert spec.last_cycle < 200
            assert spec.magnitude_ps > 0

    def test_kind_filter_respected(self):
        specs = _population(kinds=("seu", "droop"))
        assert {s.kind for s in specs} <= {"seu", "droop"}

    def test_correlated_span_fits_sites(self):
        sites = ["s0", "s1", "s2"]
        for spec in _population(num_faults=200):
            if spec.kind == "correlated":
                start = sites.index(spec.site)
                assert start + spec.span <= len(sites)
                assert spec.span >= 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            _population(num_faults=0)
        with pytest.raises(ConfigurationError):
            _population(sites=[])
        with pytest.raises(ConfigurationError):
            _population(kinds=("gremlin",))
        with pytest.raises(ConfigurationError):
            _population(magnitude_range_ps=(0, 10))
        with pytest.raises(ConfigurationError):
            _population(num_cycles=4)


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(fault_id=0, kind="gremlin", site="s0", cycle=1,
                      duration_cycles=1, magnitude_ps=50)

    def test_rejects_bad_window_and_magnitude(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(fault_id=0, kind="seu", site="s0", cycle=-1,
                      duration_cycles=1, magnitude_ps=50)
        with pytest.raises(ConfigurationError):
            FaultSpec(fault_id=0, kind="seu", site="s0", cycle=1,
                      duration_cycles=0, magnitude_ps=50)
        with pytest.raises(ConfigurationError):
            FaultSpec(fault_id=0, kind="seu", site="s0", cycle=1,
                      duration_cycles=1, magnitude_ps=0)

    def test_sites_affected(self):
        sites = ["s0", "s1", "s2"]
        droop = FaultSpec(fault_id=0, kind="droop", site="s1", cycle=1,
                          duration_cycles=2, magnitude_ps=50)
        assert droop.sites_affected(sites) == sites
        corr = FaultSpec(fault_id=1, kind="correlated", site="s1",
                         cycle=1, duration_cycles=2, magnitude_ps=50,
                         span=2)
        assert corr.sites_affected(sites) == ["s1", "s2"]
        seu = FaultSpec(fault_id=2, kind="seu", site="s2", cycle=1,
                        duration_cycles=1, magnitude_ps=50)
        assert seu.sites_affected(sites) == ["s2"]


class TestFaultOverlay:
    def _spec(self, **overrides):
        defaults = dict(fault_id=0, kind="delay", site="s1", cycle=5,
                        duration_cycles=2, magnitude_ps=70)
        defaults.update(overrides)
        return FaultSpec(**defaults)

    def test_extra_delay_only_in_window(self):
        overlay = FaultOverlay([self._spec()], ["s0", "s1"])
        assert overlay.extra_delay_ps(5, "s1") == 70
        assert overlay.extra_delay_ps(6, "s1") == 70
        assert overlay.extra_delay_ps(7, "s1") == 0
        assert overlay.extra_delay_ps(5, "s0") == 0

    def test_overlapping_faults_add(self):
        overlay = FaultOverlay(
            [self._spec(), self._spec(fault_id=1, magnitude_ps=30,
                                      cycle=6, duration_cycles=1)],
            ["s0", "s1"])
        assert overlay.extra_delay_ps(6, "s1") == 100

    def test_active_mask_matches_active_cycles(self):
        np = pytest.importorskip("numpy")
        overlay = FaultOverlay([self._spec()], ["s0", "s1"])
        cycles = np.arange(10)
        mask = overlay.active_mask(cycles)
        assert mask.tolist() == [c in (5, 6) for c in range(10)]
        assert overlay.active_cycles() == [5, 6]


class TestClassification:
    def _event(self, **flags):
        return CaptureEvent(cycle=3, site="s0", lateness_ps=50, **flags)

    def test_empty_is_benign(self):
        assert classify_events([]) == BENIGN

    def test_escape_dominates(self):
        events = [self._event(masked=True, borrowed_intervals=2),
                  self._event(failed=True)]
        assert classify_events(events) == ESCAPED

    def test_relay_beats_masking_split(self):
        events = [self._event(masked=True, flagged=True),
                  self._event(masked=True, borrowed_intervals=2)]
        assert classify_events(events) == RELAYED

    def test_flagged_mask_is_masked_ed(self):
        assert classify_events(
            [self._event(masked=True, flagged=True)]) == MASKED_ED
        assert classify_events(
            [self._event(detected=True)]) == MASKED_ED

    def test_silent_mask_is_masked_tb(self):
        assert classify_events(
            [self._event(masked=True, borrowed_intervals=1)]) == MASKED_TB

    def test_pure_warning_is_false_positive(self):
        assert classify_events(
            [self._event(predicted=True, flagged=True)]) == FALSE_POSITIVE


class TestCampaignConfig:
    def test_params_round_trip(self):
        config = CampaignConfig(num_faults=80, num_cycles=400)
        rebuilt = CampaignConfig.from_params(
            json.loads(json.dumps(config.to_params())))
        assert rebuilt == config

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(target="fpga")
        with pytest.raises(ConfigurationError):
            CampaignConfig(scheme="not-a-scheme")
        with pytest.raises(ConfigurationError):
            CampaignConfig(target="graph", scheme="razor")
        with pytest.raises(ConfigurationError):
            CampaignConfig(target="netlist", scheme="timber-latch")
        with pytest.raises(ConfigurationError):
            CampaignConfig(num_faults=0)

    def test_sites_per_target(self):
        assert CampaignConfig(num_stages=3).sites() == \
            ["cs0", "cs1", "cs2"]
        assert CampaignConfig(target="graph", scheme="plain",
                              num_stages=3).sites() == ["g1", "g2", "g3"]
        assert CampaignConfig(target="netlist",
                              scheme="plain").sites() == ["d"]

    def test_netlist_kinds_restricted(self):
        config = CampaignConfig(target="netlist", scheme="timber-ff")
        assert set(config.effective_kinds()) <= {"seu", "delay"}

    def test_margin_is_checking_interval(self):
        config = CampaignConfig(period_ps=1000, checking_percent=30.0)
        assert config.margin_ps == config.checking_period.interval_ps
        assert config.margin_ps == 100


class TestChunking:
    def test_chunk_task_equals_direct_loop(self):
        config = CampaignConfig(num_faults=12, num_cycles=120,
                                faults_per_task=5, seed=3)
        payload = campaign_chunk_task(
            {"config": config.to_params(), "start": 5, "stop": 10})
        direct = [run_one_fault(config, spec)[0]
                  for spec in config.population()[5:10]]
        assert payload.value == direct
        assert payload.events_processed > 0

    def test_chunk_layout_independent(self):
        base = dict(num_faults=20, num_cycles=120, seed=3)
        fine = run_campaign(CampaignConfig(faults_per_task=4, **base))
        coarse = run_campaign(CampaignConfig(faults_per_task=20, **base))
        assert fine.outcomes == coarse.outcomes


class TestCampaignEndToEnd:
    @pytest.fixture(scope="class")
    def results(self):
        base = dict(num_faults=120, num_cycles=400, faults_per_task=40,
                    seed=7)
        return {
            scheme: run_campaign(CampaignConfig(scheme=scheme, **base))
            for scheme in ("plain", "timber-ff")
        }

    def test_plain_only_escapes(self, results):
        counts = results["plain"].report.counts
        assert counts[ESCAPED] > 0
        assert counts[MASKED_TB] == counts[MASKED_ED] == 0
        assert counts[RELAYED] == 0
        assert results["plain"].report.coverage == 0.0

    def test_timber_masks_and_relays(self, results):
        counts = results["timber-ff"].report.counts
        assert counts[MASKED_TB] > 0
        assert counts[RELAYED] > 0
        assert results["timber-ff"].report.coverage > 0.5

    def test_attribution_consistent_across_schemes(self, results):
        # The population and sensitization draws are identical, so a
        # fault that is architecturally invisible under one scheme is
        # invisible under the other.
        assert results["plain"].report.counts[BENIGN] == \
            results["timber-ff"].report.counts[BENIGN]

    def test_every_fault_classified(self, results):
        for result in results.values():
            assert len(result.outcomes) == 120
            assert sum(result.report.counts.values()) == 120
            for outcome in result.outcomes:
                assert outcome.classification in OUTCOME_CLASSES


class TestReport:
    def _report(self):
        config = CampaignConfig(num_faults=20, num_cycles=120,
                                faults_per_task=10, seed=3)
        return config, run_campaign(config)

    def test_rates_consistent(self):
        _, result = self._report()
        report = result.report
        assert report.violations <= report.num_faults
        assert 0.0 <= report.coverage <= 1.0
        assert report.escape_rate == pytest.approx(
            1.0 - report.coverage) or report.violations == 0

    def test_render_contains_all_classes(self):
        _, result = self._report()
        text = render_reports([result.report])
        for name in OUTCOME_CLASSES:
            assert name in text

    def test_bench_artefact_schema(self, tmp_path):
        config, result = self._report()
        path = write_campaign_bench(
            tmp_path / "BENCH_campaign.json", [result.report],
            config=config, telemetry=result.summary)
        data = json.loads(path.read_text(encoding="utf-8"))
        assert data["bench"] == "campaign"
        assert data["schema_version"] == 1
        assert data["config"]["num_faults"] == 20
        report = data["reports"][0]
        assert set(report["counts"]) == set(OUTCOME_CLASSES)
        assert report["margin_ps"] == config.margin_ps
        assert data["telemetry"]["tasks"] == 2


class TestOutcomeEncoding:
    def test_outcomes_are_cacheable(self):
        from repro.exec.cache import decode_result, encode_result

        config = CampaignConfig(num_faults=8, num_cycles=120,
                                faults_per_task=8, seed=3)
        result = run_campaign(config)
        encoded = encode_result(result.outcomes)
        json.dumps(encoded)
        assert decode_result(encoded) == result.outcomes

    def test_outcomes_are_frozen_dataclasses(self):
        config = CampaignConfig(num_faults=4, num_cycles=120,
                                faults_per_task=4, seed=3)
        outcome = run_campaign(config).outcomes[0]
        with pytest.raises(dataclasses.FrozenInstanceError):
            outcome.classification = "benign"
