"""Unit tests for workload sensitization and multi-stage error rates."""

import pytest

from repro.errors import ConfigurationError
from repro.processor.workload import (
    SensitizationModel,
    multi_stage_error_probability,
    sample_multi_stage_events,
)
from repro.timing.graph import TimingEdge, TimingGraph


class TestSensitizationModel:
    def test_base_probability_at_full_criticality(self):
        model = SensitizationModel(base_probability=1e-3, period_ps=1000)
        edge = TimingEdge("a", "b", 1000)
        assert model.probability(edge) == pytest.approx(1e-3)

    def test_scales_with_criticality(self):
        model = SensitizationModel(base_probability=1e-3, period_ps=1000)
        critical = TimingEdge("a", "b", 1000)
        relaxed = TimingEdge("a", "b", 500)
        assert model.probability(relaxed) == pytest.approx(
            0.5 * model.probability(critical))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SensitizationModel(base_probability=0)
        with pytest.raises(ConfigurationError):
            SensitizationModel(period_ps=0)


class TestClosedForm:
    def test_single_stage(self):
        assert multi_stage_error_probability(1e-3, 0.5, 1) == \
            pytest.approx(5e-4)

    def test_geometric_decay(self):
        p1 = multi_stage_error_probability(1e-3, 0.5, 1)
        p2 = multi_stage_error_probability(1e-3, 0.5, 2)
        p3 = multi_stage_error_probability(1e-3, 0.5, 3)
        assert p2 == pytest.approx(p1 ** 2)
        assert p3 == pytest.approx(p1 ** 3)

    def test_paper_negligibility_claim(self):
        # With the paper's ~1e-3 sensitization, a 2-stage error is ~1e6x
        # rarer than a single-stage error.
        p1 = multi_stage_error_probability(1e-3, 1.0, 1)
        p2 = multi_stage_error_probability(1e-3, 1.0, 2)
        assert p2 / p1 == pytest.approx(1e-3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            multi_stage_error_probability(0.5, 0.5, 0)
        with pytest.raises(ConfigurationError):
            multi_stage_error_probability(1.5, 0.5, 1)


class TestMonteCarlo:
    @pytest.fixture
    def chain_graph(self):
        g = TimingGraph("chain", 1000)
        for name in ("a", "b", "c", "d"):
            g.add_ff(name)
        g.add_edge("a", "b", 950)
        g.add_edge("b", "c", 950)
        g.add_edge("c", "d", 950)
        return g

    def test_counts_decay_with_stage_depth(self, chain_graph):
        model = SensitizationModel(base_probability=0.3, period_ps=1000)
        counts = sample_multi_stage_events(
            chain_graph, percent_threshold=10.0, model=model,
            violation_probability=1.0, num_cycles=4000, seed=5)
        assert counts[1] > counts[2] > counts[3] >= 0

    def test_single_stage_rate_matches_expectation(self, chain_graph):
        model = SensitizationModel(base_probability=0.2, period_ps=1000)
        num_cycles = 5000
        counts = sample_multi_stage_events(
            chain_graph, percent_threshold=10.0, model=model,
            violation_probability=1.0, num_cycles=num_cycles, seed=5)
        expected = sum(
            model.probability(e) for e in chain_graph.critical_edges(10.0)
        ) * num_cycles
        assert counts[1] == pytest.approx(expected, rel=0.2)

    def test_zero_violation_probability_no_events(self, chain_graph):
        model = SensitizationModel(base_probability=0.5, period_ps=1000)
        counts = sample_multi_stage_events(
            chain_graph, percent_threshold=10.0, model=model,
            violation_probability=0.0, num_cycles=500, seed=5)
        assert all(count == 0 for count in counts.values())

    def test_validation(self, chain_graph):
        model = SensitizationModel()
        with pytest.raises(ConfigurationError):
            sample_multi_stage_events(
                chain_graph, percent_threshold=10.0, model=model,
                violation_probability=1.5, num_cycles=10)
