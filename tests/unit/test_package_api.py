"""Tests for the top-level package API and exports."""

import importlib

import pytest


class TestTopLevel:
    def test_version(self):
        import repro
        assert repro.__version__

    def test_top_level_exports(self):
        import repro
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_docstring_flow(self):
        # The flow advertised in repro.__doc__ must actually run.
        from repro.core import TimberDesign, TimberStyle
        from repro.processor import MEDIUM_PERFORMANCE, generate_processor

        graph = generate_processor(MEDIUM_PERFORMANCE, num_stages=3,
                                   ffs_per_stage=40, seed=1)
        design = TimberDesign(graph=graph, style=TimberStyle.FLIP_FLOP,
                              percent_checking=30.0)
        summary = design.summary()
        assert summary["margin_percent"] == pytest.approx(10.0)


SUBPACKAGES = [
    "repro.circuit", "repro.sim", "repro.sequential", "repro.timing",
    "repro.variability", "repro.pipeline", "repro.core", "repro.power",
    "repro.processor", "repro.baselines", "repro.analysis",
]


class TestSubpackageExports:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_all_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__")
        for name in module.__all__:
            assert getattr(module, name) is not None, (
                f"{module_name}.{name} exported but missing")

    @pytest.mark.parametrize("module_name", SUBPACKAGES + ["repro"])
    def test_module_has_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip()
