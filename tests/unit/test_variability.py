"""Unit tests for variability models."""

import pytest

from repro.errors import ConfigurationError
from repro.variability import (
    AgingVariation,
    CompositeVariation,
    ConstantVariation,
    DroopEvent,
    LocalVariation,
    ProcessVariation,
    TemperatureDriftVariation,
    VoltageDroopVariation,
)


class TestConstantAndComposite:
    def test_constant(self):
        assert ConstantVariation(1.1).factor(5, "p") == 1.1

    def test_constant_validation(self):
        with pytest.raises(ConfigurationError):
            ConstantVariation(0)

    def test_composite_multiplies(self):
        model = CompositeVariation([ConstantVariation(1.1),
                                    ConstantVariation(2.0)])
        assert model.factor(0, "p") == pytest.approx(2.2)

    def test_composite_needs_models(self):
        with pytest.raises(ConfigurationError):
            CompositeVariation([])


class TestLocal:
    def test_deterministic_per_pair(self):
        model = LocalVariation(sigma=0.05, seed=3)
        assert model.factor(10, "a") == model.factor(10, "a")

    def test_varies_across_cycles_and_paths(self):
        model = LocalVariation(sigma=0.05, seed=3)
        assert model.factor(10, "a") != model.factor(11, "a")
        assert model.factor(10, "a") != model.factor(10, "b")

    def test_zero_sigma_returns_mean(self):
        model = LocalVariation(sigma=0.0, mean=1.02)
        assert model.factor(0, "x") == 1.02

    def test_min_factor_clips(self):
        model = LocalVariation(sigma=5.0, min_factor=0.9, seed=1)
        samples = [model.factor(c, "p") for c in range(100)]
        assert min(samples) >= 0.9

    def test_mean_roughly_centred(self):
        model = LocalVariation(sigma=0.03, seed=9)
        samples = [model.factor(c, "p") for c in range(2000)]
        assert sum(samples) / len(samples) == pytest.approx(1.0, abs=0.01)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LocalVariation(sigma=-0.1)


class TestDroop:
    def test_event_profile_shape(self):
        event = DroopEvent(start_cycle=10, duration_cycles=8,
                           amplitude=0.1)
        assert event.factor_at(9) == 1.0
        assert event.factor_at(13) == pytest.approx(1.1)   # plateau
        assert event.factor_at(18) == 1.0
        assert 1.0 < event.factor_at(10) <= 1.1            # ramp up

    def test_factor_applies_to_all_paths(self):
        model = VoltageDroopVariation(event_probability=1.0,
                                      amplitude=0.1, amplitude_jitter=0.0,
                                      seed=2)
        assert model.factor(5, "a") == model.factor(5, "b")

    def test_zero_probability_always_nominal(self):
        model = VoltageDroopVariation(event_probability=0.0, seed=2)
        assert all(model.factor(c, "p") == 1.0 for c in range(50))

    def test_events_in_window_deterministic(self):
        model = VoltageDroopVariation(event_probability=0.05, seed=4)
        assert [e.start_cycle for e in model.events_in(500)] == \
            [e.start_cycle for e in model.events_in(500)]

    def test_event_rate_matches_probability(self):
        model = VoltageDroopVariation(event_probability=0.02, seed=8)
        count = len(model.events_in(10_000))
        assert count == pytest.approx(200, rel=0.3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            VoltageDroopVariation(event_probability=2.0)


class TestSlowGlobal:
    def test_temperature_range(self):
        model = TemperatureDriftVariation(amplitude=0.06,
                                          period_cycles=1000)
        samples = [model.factor(c, "p") for c in range(0, 2000, 10)]
        assert min(samples) >= 1.0
        assert max(samples) == pytest.approx(1.06, abs=0.002)

    def test_temperature_starts_cool(self):
        model = TemperatureDriftVariation(amplitude=0.06,
                                          period_cycles=1000)
        assert model.factor(0, "p") == pytest.approx(1.0, abs=1e-9)

    def test_aging_monotone(self):
        model = AgingVariation(max_degradation=0.1,
                               time_constant_cycles=1e6)
        factors = [model.factor(c, "p")
                   for c in (0, 10, 1000, 100_000, 10_000_000)]
        assert factors == sorted(factors)
        assert factors[0] == 1.0
        assert factors[-1] <= 1.1

    def test_aging_saturates(self):
        model = AgingVariation(max_degradation=0.1,
                               time_constant_cycles=100)
        assert model.factor(10**9, "p") == pytest.approx(1.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TemperatureDriftVariation(amplitude=-0.1)
        with pytest.raises(ConfigurationError):
            AgingVariation(exponent=0)


class TestProcess:
    def test_time_invariant(self):
        model = ProcessVariation(seed=5)
        assert model.factor(0, "p") == model.factor(999, "p")

    def test_path_specific(self):
        model = ProcessVariation(sigma=0.05, seed=5)
        values = {model.factor(0, f"p{i}") for i in range(20)}
        assert len(values) > 1

    def test_chip_factor_shared(self):
        model = ProcessVariation(sigma=0.0, chip_sigma=0.05, seed=5)
        assert model.factor(0, "a") == model.factor(0, "b")

    def test_different_chips_differ(self):
        a = ProcessVariation(chip_sigma=0.05, seed=1)
        b = ProcessVariation(chip_sigma=0.05, seed=2)
        assert a.chip_factor != b.chip_factor

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProcessVariation(sigma=-1)
