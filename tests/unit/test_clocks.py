"""Unit tests for clock generation."""

import pytest

from repro.circuit.logic import Logic
from repro.errors import ConfigurationError
from repro.sim.clocks import ClockGenerator, DelayedClock
from repro.sim.engine import Simulator


class TestClockGenerator:
    def test_edges_at_expected_times(self, sim):
        clock = ClockGenerator(sim, "clk", 100)
        sim.run(350)
        assert clock.edges.rising == [0, 100, 200, 300]
        assert clock.edges.falling == [50, 150, 250, 350]

    def test_custom_duty_cycle(self, sim):
        clock = ClockGenerator(sim, "clk", 100, high_ps=30)
        sim.run(250)
        assert clock.edges.falling == [30, 130, 230]

    def test_start_offset(self, sim):
        clock = ClockGenerator(sim, "clk", 100, start_ps=40)
        sim.run(200)
        assert clock.edges.rising == [40, 140]

    def test_rejects_tiny_period(self, sim):
        with pytest.raises(ConfigurationError):
            ClockGenerator(sim, "clk", 1)

    def test_rejects_bad_high_time(self, sim):
        with pytest.raises(ConfigurationError):
            ClockGenerator(sim, "clk", 100, high_ps=100)

    def test_period_change_applies_at_next_rising_edge(self, sim):
        clock = ClockGenerator(sim, "clk", 100)
        sim.run(120)          # edges at 0 and 100 have fired
        clock.set_period(200)
        sim.run(700)
        # Edge at 200 adopts the new period: subsequent edges at 400, 600.
        assert clock.edges.rising == [0, 100, 200, 400, 600]

    def test_period_change_rejects_tiny(self, sim):
        clock = ClockGenerator(sim, "clk", 100)
        with pytest.raises(ConfigurationError):
            clock.set_period(0)

    def test_signal_value_tracks_phase(self, sim):
        ClockGenerator(sim, "clk", 100)
        sim.run(20)
        assert sim.value("clk") is Logic.ONE
        sim.run(70)
        assert sim.value("clk") is Logic.ZERO


class TestDelayedClock:
    def test_follows_source_with_delay(self, sim):
        ClockGenerator(sim, "clk", 100)
        DelayedClock(sim, "clk", "clkd", 30)
        changes = []
        sim.on_change("clkd", lambda s, n, v, t: changes.append((t, v)))
        sim.run(160)
        assert (30, Logic.ONE) in changes
        assert (80, Logic.ZERO) in changes
        assert (130, Logic.ONE) in changes

    def test_delay_change_applies_to_later_edges(self, sim):
        ClockGenerator(sim, "clk", 100)
        delayed = DelayedClock(sim, "clk", "clkd", 10)
        rises = []
        sim.on_change("clkd", lambda s, n, v, t:
                      rises.append(t) if v is Logic.ONE else None)
        sim.run(60)
        delayed.delay_ps = 40
        sim.run(250)
        assert rises == [10, 140, 240]

    def test_rejects_negative_delay(self, sim):
        with pytest.raises(ConfigurationError):
            DelayedClock(sim, "clk", "clkd", -1)
