"""Unit tests for path enumeration."""

import pytest

from repro.circuit.cells import default_library
from repro.circuit.generate import inverter_chain, random_stage
from repro.circuit.netlist import Netlist
from repro.errors import AnalysisError
from repro.timing.paths import PathSet, TimingPath, enumerate_paths
from repro.timing.sta import run_sta


@pytest.fixture
def reconvergent():
    """Two launch points reconverging through different depths."""
    netlist = Netlist("reconv", default_library())
    netlist.add_input("a", registered=True)
    netlist.add_input("b", registered=True)
    netlist.add_gate("i1", "INV", ["a"], "n1")
    netlist.add_gate("i2", "INV", ["n1"], "n2")
    netlist.add_gate("j", "NAND2", ["n2", "b"], "out")
    netlist.add_output("out", registered=True)
    return netlist


class TestEnumeration:
    def test_finds_both_paths(self, reconvergent):
        paths = enumerate_paths(reconvergent, 1000, clk_to_q_ps=0)
        assert len(paths) == 2
        launches = {p.launch for p in paths}
        assert launches == {"a", "b"}

    def test_paths_sorted_by_delay(self, reconvergent):
        paths = enumerate_paths(reconvergent, 1000, clk_to_q_ps=0)
        delays = [p.delay_ps for p in paths]
        assert delays == sorted(delays, reverse=True)

    def test_path_delay_matches_gate_sum(self, reconvergent):
        paths = enumerate_paths(reconvergent, 1000, clk_to_q_ps=0)
        lib = reconvergent.library
        longest = paths.paths[0]
        assert longest.launch == "a"
        assert longest.delay_ps == 2 * lib["INV"].delay_ps + \
            lib["NAND2"].delay_ps
        assert longest.gates == ("i1", "i2", "j")

    def test_worst_path_agrees_with_sta(self):
        stage = random_stage(num_inputs=5, num_outputs=4, depth=5, width=8,
                             seed=13)
        paths = enumerate_paths(stage, 10_000, clk_to_q_ps=45)
        sta = run_sta(stage, 10_000, clk_to_q_ps=45)
        for capture in stage.capture_nets:
            worst = max(p.delay_ps for p in paths if p.capture == capture)
            assert worst == sta.max_arrival[capture]

    def test_k_limit_respected(self):
        stage = random_stage(num_inputs=6, num_outputs=2, depth=4, width=8,
                             seed=2)
        paths = enumerate_paths(stage, 10_000, max_paths_per_endpoint=3)
        for capture in stage.capture_nets:
            count = sum(1 for p in paths if p.capture == capture)
            assert count <= 3

    def test_chain_depth(self):
        chain = inverter_chain(5)
        paths = enumerate_paths(chain, 1000)
        assert len(paths) == 1
        assert paths.paths[0].depth == 5


class TestPathSet:
    def make_set(self):
        paths = [
            TimingPath("a", "x", (), 950),
            TimingPath("b", "y", (), 850),
            TimingPath("c", "z", (), 500),
        ]
        return PathSet(paths, period_ps=1000)

    def test_top_percent(self):
        pset = self.make_set()
        assert {p.launch for p in pset.top_percent(10)} == {"a"}
        assert {p.launch for p in pset.top_percent(20)} == {"a", "b"}

    def test_top_count(self):
        pset = self.make_set()
        assert [p.launch for p in pset.top_count(2)] == ["a", "b"]

    def test_endpoints_startpoints(self):
        pset = self.make_set()
        assert pset.endpoints(20) == {"x", "y"}
        assert pset.startpoints(20) == {"a", "b"}

    def test_percent_validation(self):
        pset = self.make_set()
        with pytest.raises(AnalysisError):
            pset.top_percent(0)

    def test_negative_delay_rejected(self):
        with pytest.raises(AnalysisError):
            TimingPath("a", "b", (), -1)
