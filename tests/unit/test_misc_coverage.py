"""Gap-filling tests for small utilities and edge behaviours."""

import pytest

from repro.circuit.logic import Logic
from repro.pipeline.pipeline import PipelineResult
from repro.sequential.base import TimingCheck
from repro.sim.engine import Simulator
from repro.sim.waveform import Waveform


class TestTimingCheck:
    def test_violated_inside_aperture(self):
        check = TimingCheck(setup_ps=30, hold_ps=15)
        assert check.violated(last_data_change_ps=980, sample_ps=1000)

    def test_clean_outside_aperture(self):
        check = TimingCheck(setup_ps=30, hold_ps=15)
        assert not check.violated(last_data_change_ps=960, sample_ps=1000)

    def test_no_history_never_violates(self):
        check = TimingCheck(setup_ps=30, hold_ps=15)
        assert not check.violated(None, 1000)

    def test_change_at_sample_instant_violates(self):
        check = TimingCheck(setup_ps=30, hold_ps=15)
        assert check.violated(1000, 1000)

    def test_negative_windows_rejected(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            TimingCheck(setup_ps=-1)


class TestSimulatorIntrospection:
    def test_signals_snapshot(self, sim):
        sim.set_initial("a", 1)
        sim.drive("b", 0, 10)
        sim.run(20)
        snapshot = sim.signals()
        assert snapshot["a"] is Logic.ONE
        assert snapshot["b"] is Logic.ZERO

    def test_toggle_count_external_drives(self, sim):
        sim.set_initial("a", 0)
        sim.drive("a", 1, 10)
        sim.drive("a", 0, 20)
        sim.run(30)
        assert sim.toggle_count("a") == 2
        assert sim.toggle_count("never") == 0

    def test_events_processed_counter(self, sim):
        sim.drive("a", 1, 10)
        sim.run(20)
        assert sim.events_processed == 1


class TestWaveformChanges:
    def test_changes_include_redundant_writes(self):
        wave = Waveform("s", initial=Logic.ZERO)
        wave.record(10, Logic.ONE)
        wave.record(20, Logic.ONE)
        assert wave.changes() == [(10, Logic.ONE), (20, Logic.ONE)]
        assert len(wave.edges()) == 1


class TestPipelineResultProperties:
    def test_error_rate(self):
        result = PipelineResult(scheme="t", cycles=10, period_ps=1000,
                                clean=25, masked=3, failed=2)
        assert result.captures == 30
        assert result.error_rate == pytest.approx(5 / 30)

    def test_empty_error_rate(self):
        result = PipelineResult(scheme="t", cycles=1, period_ps=1000)
        assert result.error_rate == 0.0

    def test_nominal_time(self):
        result = PipelineResult(scheme="t", cycles=7, period_ps=1000)
        assert result.nominal_time_ps == 7000

    def test_throughput_with_zero_time(self):
        result = PipelineResult(scheme="t", cycles=7, period_ps=1000)
        assert result.throughput_factor == 1.0


class TestCliHeavyCommands:
    def test_fig1_command(self, capsys):
        from repro.cli import main
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "medium" in out and "top 20%" in out


class TestGraphSimResultProperties:
    def test_masked_fraction(self):
        from repro.pipeline.graph_sim import GraphPipelineResult
        result = GraphPipelineResult(
            scheme="timber-ff", cycles=10, num_ffs=4, num_protected=2,
            candidate_edges=3, masked=3, failed=1)
        assert result.violations == 4
        assert result.masked_fraction == pytest.approx(0.75)

    def test_no_violations_fraction_is_one(self):
        from repro.pipeline.graph_sim import GraphPipelineResult
        result = GraphPipelineResult(
            scheme="plain", cycles=10, num_ffs=4, num_protected=0,
            candidate_edges=0)
        assert result.masked_fraction == 1.0
