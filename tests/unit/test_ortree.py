"""Unit tests for the error-consolidation OR-tree."""

import pytest

from repro.core.checking_period import CheckingPeriod
from repro.core.ortree import (
    build_or_tree,
    consolidation_latency_ps,
)
from repro.errors import ConfigurationError


class TestConstruction:
    def test_single_input_degenerate(self):
        tree = build_or_tree(1)
        assert tree.depth == 0
        assert tree.num_gates == 0
        assert tree.latency_ps == 0

    def test_exact_fanin_power(self):
        tree = build_or_tree(16, fanin=4)
        assert tree.depth == 2
        assert tree.num_gates == 4 + 1

    def test_ragged_width(self):
        tree = build_or_tree(17, fanin=4)
        # 17 -> 5 gates -> 2 gates -> 1 gate.
        assert tree.depth == 3
        assert tree.num_gates == 5 + 2 + 1

    def test_depth_logarithmic(self):
        small = build_or_tree(100, fanin=4)
        large = build_or_tree(10_000, fanin=4)
        assert large.depth <= small.depth + 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            build_or_tree(0)
        with pytest.raises(ConfigurationError):
            build_or_tree(10, fanin=1)


class TestCosts:
    def test_latency_scales_with_depth(self):
        tree = build_or_tree(256, fanin=4)
        per_level = tree.gate_delay_ps + tree.wire_delay_per_level_ps
        assert tree.latency_ps == tree.depth * per_level

    def test_area_and_leakage_positive(self):
        tree = build_or_tree(64)
        assert tree.area > 0
        assert tree.leakage > 0

    def test_wider_fanin_shallower_but_slower_gates(self):
        narrow = build_or_tree(256, fanin=2)
        wide = build_or_tree(256, fanin=8)
        assert wide.depth < narrow.depth
        assert wide.gate_delay_ps > narrow.gate_delay_ps


class TestBudget:
    def test_processor_scale_tree_fits_paper_budget(self):
        # ~1200 protected elements (the medium point at 30% checking)
        # must consolidate within 1.5 cycles of a 1.1 ns clock.
        cp = CheckingPeriod.with_tb(1100, 30)
        tree = build_or_tree(1200, fanin=4)
        assert tree.fits_budget(cp, controller_decision_ps=120)

    def test_budget_fails_for_absurd_wire_delay(self):
        cp = CheckingPeriod.with_tb(1000, 30)
        tree = build_or_tree(1200, fanin=4,
                             wire_delay_per_level_ps=500)
        assert not tree.fits_budget(cp)

    def test_budget_validation(self):
        cp = CheckingPeriod.with_tb(1000, 30)
        tree = build_or_tree(8)
        with pytest.raises(ConfigurationError):
            tree.fits_budget(cp, controller_decision_ps=-1)

    def test_convenience_wrapper(self):
        latency = consolidation_latency_ps(1200)
        tree = build_or_tree(1200)
        assert latency == tree.latency_ps + 120
