"""Unit tests for checking-period arithmetic (paper Secs. 3-4)."""

import pytest

from repro.core.checking_period import CheckingPeriod, IntervalKind
from repro.errors import ConfigurationError

PERIOD = 1000


class TestConstruction:
    def test_with_tb_layout(self):
        cp = CheckingPeriod.with_tb(PERIOD, 30)
        assert cp.num_intervals == 3
        assert cp.num_tb == 1
        assert cp.checking_ps == 300
        assert cp.interval_ps == 100

    def test_without_tb_layout(self):
        cp = CheckingPeriod.without_tb(PERIOD, 30)
        assert cp.num_intervals == 2
        assert cp.num_tb == 0
        assert cp.interval_ps == 150

    def test_rejects_checking_past_half_period(self):
        with pytest.raises(ConfigurationError):
            CheckingPeriod(PERIOD, 55)

    def test_rejects_zero_percent(self):
        with pytest.raises(ConfigurationError):
            CheckingPeriod(PERIOD, 0)

    def test_rejects_all_tb(self):
        with pytest.raises(ConfigurationError):
            CheckingPeriod(PERIOD, 30, num_intervals=2, num_tb=2)

    def test_rejects_zero_width_interval(self):
        with pytest.raises(ConfigurationError):
            CheckingPeriod(10, 10, num_intervals=3, num_tb=1)


class TestMarginRecovery:
    def test_margin_without_tb_is_c_over_2(self):
        cp = CheckingPeriod.without_tb(PERIOD, 30)
        assert cp.recovered_margin_percent == pytest.approx(15.0)
        assert cp.recovered_margin_ps == 150

    def test_margin_with_tb_is_c_over_3(self):
        cp = CheckingPeriod.with_tb(PERIOD, 30)
        assert cp.recovered_margin_percent == pytest.approx(10.0)
        assert cp.recovered_margin_ps == 100

    @pytest.mark.parametrize("percent", [10, 20, 30, 40])
    def test_case_study_margins(self, percent):
        # The paper's Sec. 6 margin table: c/2 without, c/3 with TB.
        without = CheckingPeriod.without_tb(PERIOD, percent)
        with_tb = CheckingPeriod.with_tb(PERIOD, percent)
        assert without.recovered_margin_percent == pytest.approx(percent / 2)
        assert with_tb.recovered_margin_percent == pytest.approx(percent / 3)


class TestIntervalClassification:
    def test_interval_kinds(self):
        cp = CheckingPeriod.with_tb(PERIOD, 30)
        assert cp.interval_kind(1) is IntervalKind.TB
        assert cp.interval_kind(2) is IntervalKind.ED
        assert cp.interval_kind(3) is IntervalKind.ED

    def test_flags_on_interval(self):
        cp = CheckingPeriod.with_tb(PERIOD, 30)
        assert not cp.flags_on_interval(1)
        assert cp.flags_on_interval(2)

    def test_without_tb_flags_immediately(self):
        cp = CheckingPeriod.without_tb(PERIOD, 30)
        assert cp.flags_on_interval(1)

    def test_interval_kind_bounds(self):
        cp = CheckingPeriod.with_tb(PERIOD, 30)
        with pytest.raises(ConfigurationError):
            cp.interval_kind(0)
        with pytest.raises(ConfigurationError):
            cp.interval_kind(4)

    def test_tb_ed_durations_sum(self):
        cp = CheckingPeriod.with_tb(PERIOD, 30)
        assert cp.tb_ps + cp.ed_ps == cp.num_intervals * cp.interval_ps


class TestConsolidationBudget:
    def test_paper_1p5_cycle_budget(self):
        # 1 TB + 2 ED: one extra masked cycle + half cycle from the
        # falling-edge latch = 1.5 clock cycles (paper Sec. 4 / Fig. 2).
        cp = CheckingPeriod.with_tb(PERIOD, 30)
        assert cp.stages_masked_after_flag == 1
        assert cp.consolidation_budget_ps() == 1500

    def test_without_tb_budget_longer(self):
        # 2 ED intervals: also one extra masked interval after the flag.
        cp = CheckingPeriod.without_tb(PERIOD, 30)
        assert cp.stages_masked_after_flag == 1
        assert cp.consolidation_budget_ps() == 1500

    def test_max_maskable_stages(self):
        assert CheckingPeriod.with_tb(PERIOD, 30).max_maskable_stages == 3
        assert CheckingPeriod.without_tb(PERIOD, 30).max_maskable_stages == 2


class TestHoldConstraint:
    def test_min_short_path(self):
        cp = CheckingPeriod.with_tb(PERIOD, 30)
        assert cp.min_short_path_delay_ps(hold_ps=15) == 315

    def test_rejects_negative_hold(self):
        cp = CheckingPeriod.with_tb(PERIOD, 30)
        with pytest.raises(ConfigurationError):
            cp.min_short_path_delay_ps(-1)
