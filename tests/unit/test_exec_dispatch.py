"""Unit tests for the batched warm-worker dispatch layer."""

import dataclasses
import os

import pytest

from repro.errors import ConfigurationError, ExecutionError
from repro.exec import (
    DispatchSizer,
    ResultCache,
    SweepCheckpoint,
    SweepRunner,
    SweepTask,
    expand_grid,
)
from repro.exec.runner import execute_batch
from repro.exec.worker import WarmCache

SQUARE = "repro.exec.testing:square_task"
SLEEP = "repro.exec.testing:sleep_task"
FLAKY = "repro.exec.testing:flaky_task"
KILLER = "repro.exec.testing:kill_worker_task"


def _square_tasks(values, root_seed=7):
    return expand_grid(SQUARE, {"x": values}, root_seed=root_seed)


def _sleep_tasks(seconds_list):
    return expand_grid(SLEEP, {"seconds": seconds_list}, root_seed=3)


class TestWarmCache:
    def test_hit_after_miss(self):
        cache = WarmCache(capacity=4)
        built = []

        def builder():
            built.append(1)
            return "artefact"

        assert cache.get_or_build("compiled", "k", builder) == "artefact"
        assert cache.get_or_build("compiled", "k", builder) == "artefact"
        assert built == [1]
        assert cache.counters() == {"compiled": [1, 1]}

    def test_lru_eviction(self):
        cache = WarmCache(capacity=2)
        for key in ("a", "b", "c"):
            cache.get_or_build("k", key, lambda k=key: k)
        assert len(cache) == 2
        # "a" was evicted: looking it up again is a miss.
        cache.get_or_build("k", "a", lambda: "a")
        assert cache.counters()["k"] == [0, 4]

    def test_recently_used_survives_eviction(self):
        cache = WarmCache(capacity=2)
        cache.get_or_build("k", "a", lambda: "a")
        cache.get_or_build("k", "b", lambda: "b")
        cache.get_or_build("k", "a", lambda: "a")  # refresh "a"
        cache.get_or_build("k", "c", lambda: "c")  # evicts "b"
        hits_before = cache.counters()["k"][0]
        cache.get_or_build("k", "a", lambda: "a")
        assert cache.counters()["k"][0] == hits_before + 1

    def test_zero_capacity_disables_retention(self):
        cache = WarmCache(capacity=0)
        built = []
        for _ in range(3):
            cache.get_or_build("k", "a", lambda: built.append(1))
        assert len(built) == 3
        assert len(cache) == 0
        assert cache.counters() == {"k": [0, 3]}

    def test_configure_shrinks(self):
        cache = WarmCache(capacity=8)
        for key in "abcdef":
            cache.get_or_build("k", key, lambda k=key: k)
        cache.configure(2)
        assert len(cache) == 2

    def test_stats_delta(self):
        cache = WarmCache(capacity=4)
        cache.get_or_build("k", "a", lambda: "a")
        before = cache.counters()
        cache.get_or_build("k", "a", lambda: "a")
        cache.get_or_build("other", "x", lambda: "x")
        assert cache.stats_delta(before) == {"k": [1, 0],
                                             "other": [0, 1]}
        # No activity -> empty delta, nothing to ship.
        assert cache.stats_delta(cache.counters()) == {}


class TestDispatchSizer:
    def test_initial_prior_is_modest(self):
        assert DispatchSizer(0.8, 64).size() == 8

    def test_adapts_to_observed_durations(self):
        sizer = DispatchSizer(1.0, 64)
        for _ in range(20):
            sizer.observe(0.05)
        assert sizer.size() == pytest.approx(20, abs=2)

    def test_capped_by_max_batch(self):
        sizer = DispatchSizer(10.0, 16)
        for _ in range(20):
            sizer.observe(1e-5)
        assert sizer.size() == 16

    def test_never_below_one(self):
        sizer = DispatchSizer(0.01, 64)
        for _ in range(20):
            sizer.observe(5.0)
        assert sizer.size() == 1

    def test_zero_target_disables_batching(self):
        sizer = DispatchSizer(0.0, 64)
        sizer.observe(0.01)
        assert sizer.size() == 1

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepRunner(batch_target_s=-1.0)
        with pytest.raises(ConfigurationError):
            SweepRunner(max_batch=0)


class TestExecuteBatch:
    def test_failures_do_not_sink_batch_mates(self, tmp_path):
        good = dataclasses.asdict(_square_tasks((3,))[0])
        bad = dataclasses.asdict(SweepTask(
            experiment=FLAKY,
            params={"counter_path": str(tmp_path / "c"),
                    "fail_times": 99},
            index=1, seed=0, key="flaky[1]",
        ))
        out = execute_batch([bad, good])
        assert out["worker_pid"] == os.getpid()
        assert out["results"][0]["ok"] is False
        assert "flaky" in out["results"][0]["error"]
        assert out["results"][1]["ok"] is True
        assert out["results"][1]["value"] == 9


class TestBatchedExecution:
    def test_batched_matches_serial(self):
        tasks = _square_tasks(tuple(range(12)))
        serial = SweepRunner().run_values(tasks)
        with SweepRunner(workers=2, batch_target_s=5.0) as runner:
            run = runner.run(tasks)
        assert run.values == serial
        assert run.summary["batches"] >= 1
        assert run.summary["batch_tasks"]["max"] > 1

    def test_per_task_dispatch_when_target_zero(self):
        tasks = _square_tasks(tuple(range(6)))
        with SweepRunner(workers=2, batch_target_s=0.0) as runner:
            run = runner.run(tasks)
        assert run.summary["batches"] == 6
        assert run.summary["batch_tasks"]["max"] == 1

    def test_pool_persists_across_runs(self):
        with SweepRunner(workers=2) as runner:
            runner.run(_square_tasks((1, 2, 3)))
            pool = runner._pool
            assert pool is not None
            run = runner.run(_square_tasks((4, 5, 6)))
            assert runner._pool is pool
        assert run.values == [16, 25, 36]
        assert runner._pool is None  # closed on exit

    def test_run_after_close_rebuilds_pool(self):
        runner = SweepRunner(workers=2)
        try:
            runner.run(_square_tasks((1,)))
            runner.close()
            assert runner.run_values(_square_tasks((2,))) == [4]
        finally:
            runner.close()

    def test_spawn_start_method_supported(self):
        # The dispatch layer must be spawn-safe: dotted-path task
        # resolution, initializer-carried warm-cache config.
        tasks = _square_tasks((2, 3, 4))
        with SweepRunner(workers=2, mp_start="spawn") as runner:
            assert runner.run_values(tasks) == [4, 9, 16]

    def test_retries_resubmitted_to_pool(self, tmp_path):
        # An ordinary pool-path failure retries on the pool, not via
        # the serial in-parent path.
        tasks = [
            SweepTask(
                experiment=FLAKY,
                params={"counter_path": str(tmp_path / f"c{i}"),
                        "fail_times": 1},
                index=i, seed=i, key=f"flaky[{i}]",
            )
            for i in range(3)
        ]
        with SweepRunner(workers=2) as runner:
            run = runner.run(tasks)
        assert [o.value for o in run.outcomes] == [2, 2, 2]
        assert all(o.attempts == 2 for o in run.outcomes)
        assert all(o.worker_pid != os.getpid() for o in run.outcomes)

    def test_retries_exhausted_still_raises(self, tmp_path):
        task = SweepTask(
            experiment=FLAKY,
            params={"counter_path": str(tmp_path / "c"),
                    "fail_times": 10},
            index=0, seed=0, key="flaky[0]",
        )
        with SweepRunner(workers=2) as runner:
            with pytest.raises(ExecutionError, match="flaky"):
                runner.run([task])


class TestTimeoutSemantics:
    def test_queue_wait_not_charged(self):
        # Regression: 8 x 0.25s tasks on 2 workers take ~1s of queue
        # time; with a 1.2s per-attempt budget none may time out even
        # though the last task finishes well past 1.2s of wall time.
        # (The old future.result(timeout=...) accounting charged queue
        # wait and spuriously killed the tail of exactly this sweep.)
        tasks = _sleep_tasks((0.25,) * 8)
        with SweepRunner(workers=2, task_timeout_s=1.2,
                         batch_target_s=0.0, retries=0) as runner:
            run = runner.run(tasks)
        assert run.values == [0.25] * 8
        assert run.summary["retries"] == []

    def test_deadline_scales_with_batch_size(self):
        # A batch of n tasks gets n per-task budgets.
        tasks = _sleep_tasks((0.15,) * 6)
        with SweepRunner(workers=2, task_timeout_s=0.4,
                         batch_target_s=10.0, retries=0) as runner:
            run = runner.run(tasks)
        assert run.values == [0.15] * 6
        assert run.summary["retries"] == []

    def test_overlong_task_times_out(self):
        tasks = _sleep_tasks((5.0,))
        with SweepRunner(workers=2, task_timeout_s=0.2,
                         retries=0) as runner:
            with pytest.raises(ExecutionError, match="no result within"):
                runner.run(tasks)


class TestBatchBoundaries:
    def test_checkpoint_resumes_exactly_completed_prefix(self, tmp_path):
        # A task fails mid-sweep with retries exhausted; everything
        # recorded before the failure must be in the checkpoint, and a
        # resume replays exactly that set without re-executing it.
        counter = tmp_path / "flaky-count"
        tasks = list(_square_tasks(tuple(range(8))))
        tasks.append(SweepTask(
            experiment=FLAKY,
            params={"counter_path": str(counter), "fail_times": 1},
            index=8, seed=99, key="flaky[8]",
        ))
        path = tmp_path / "ckpt.json"
        with SweepRunner(workers=2, retries=0, batch_target_s=5.0,
                         checkpoint=SweepCheckpoint(path, every=1),
                         ) as runner:
            with pytest.raises(ExecutionError):
                runner.run(tasks)
        import json

        completed = {int(index) for index in
                     json.loads(path.read_text())["completed"]}
        assert completed  # the failure didn't wipe finished work
        assert 8 not in completed
        with SweepRunner(workers=2, retries=0, batch_target_s=5.0,
                         checkpoint=SweepCheckpoint(path, every=1,
                                                    resume=True),
                         ) as runner:
            run = runner.run(tasks)
        by_index = {o.task.index: o for o in run.outcomes}
        assert {i for i, o in by_index.items()
                if o.resumed} == completed
        assert [by_index[i].value for i in range(8)] == \
            [i ** 2 for i in range(8)]
        assert by_index[8].value == 2  # flaky passed on its 2nd attempt
        assert run.summary["resumed_tasks"] == len(completed)

    def test_quarantine_attributes_poison_within_batch(self, tmp_path):
        # The killer shares a batch with innocent tasks: only the
        # killer is poisoned, every batch-mate completes with a value.
        tasks = [SweepTask(
            experiment=KILLER,
            params={"counter_path": str(tmp_path / "kc"),
                    "kill_times": 99},
            index=0, seed=100, key="killer[0]",
        )]
        for i, x in enumerate((2, 3, 4, 5, 6), start=1):
            tasks.append(dataclasses.replace(
                _square_tasks((x,))[0], index=i))
        with SweepRunner(workers=2, poison_after=2,
                         batch_target_s=5.0) as runner:
            run = runner.run(tasks)
        assert run.outcomes[0].status == "poisoned"
        assert run.summary["poisoned"] == ["killer[0]"]
        assert len(run.summary["crashes"]) == 2
        assert [o.status for o in run.outcomes[1:]] == ["done"] * 5
        assert run.values[1:] == [4, 9, 16, 25, 36]

    def test_cache_hits_do_not_skew_sizer(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tasks = _square_tasks(tuple(range(6)))
        with SweepRunner(workers=2, cache=cache) as runner:
            runner.run(tasks)
            ema_after_cold = runner._sizer.observed_task_s
            warm = runner.run(tasks)
            # All hits: nothing executed, so the duration estimate (and
            # hence the next batch size) must be untouched.
            assert warm.summary["cache_hits"] == 6
            assert runner._sizer.observed_task_s == ema_after_cold
            assert warm.summary["batches"] == 0

    def test_sizer_survives_across_phases(self):
        # The campaign CLI reuses one runner across scheme phases; the
        # second phase must start from the durations the first observed
        # rather than from the prior.
        with SweepRunner(workers=2) as runner:
            prior = runner._sizer.observed_task_s
            sizer = runner._sizer
            runner.run(_square_tasks(tuple(range(4))))
            assert runner._sizer is sizer
            assert runner._sizer.observed_task_s != prior
            runner.run(_square_tasks(tuple(range(4, 8))))
            assert runner._sizer is sizer


class TestTelemetryAggregation:
    def test_warm_stats_aggregate_in_summary(self):
        with SweepRunner(workers=2, batch_target_s=5.0) as runner:
            run = runner.run(_square_tasks(tuple(range(10))))
        warm = run.summary["warm_cache"]
        # One lookup per task.  Under a fork start the workers may be
        # born with the parent's resolutions already warm (all hits);
        # under spawn the first lookup per worker is a miss.
        total = warm["task-func"]["hits"] + warm["task-func"]["misses"]
        assert total == 10
        assert warm["task-func"]["hits"] >= 1
