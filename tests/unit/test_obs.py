"""Unit tests for repro.obs: registry, tracing, exporters, wiring."""

import json

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.obs.exporters import (
    chrome_trace,
    lint_metric_names,
    load_spans_jsonl,
    render_flame,
    render_prometheus,
    write_obs_dir,
)
from repro.obs.registry import MetricsRegistry, snapshot_delta
from repro.obs.tracing import NOOP_SPAN, Tracer


@pytest.fixture()
def registry():
    return MetricsRegistry(enabled=True)


class TestRegistry:
    def test_disabled_calls_are_noops(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total").labels()
        gauge = registry.gauge("g").labels()
        hist = registry.histogram("h", buckets=(1.0,)).labels()
        counter.inc()
        gauge.set(5)
        hist.observe(0.5)
        assert counter.value == 0
        assert gauge.value == 0
        assert hist.counts == [0, 0]

    def test_enabled_counting(self, registry):
        counter = registry.counter("c_total").labels()
        counter.inc()
        counter.inc(3)
        assert counter.value == 4
        gauge = registry.gauge("g").labels()
        gauge.set(7)
        gauge.dec(2)
        gauge.inc()
        assert gauge.value == 6

    def test_histogram_buckets(self, registry):
        hist = registry.histogram("h", buckets=(1, 2, 4)).labels()
        for value in (0, 1, 2, 3, 100):
            hist.observe(value)
        # bisect_left: <=1, <=1, <=2, <=4, overflow
        assert hist.counts == [2, 1, 1, 1]
        assert hist.sum == 106

    def test_labels_cached_and_validated(self, registry):
        family = registry.counter("c_total", labelnames=("stage",))
        assert family.labels(stage="a") is family.labels(stage="a")
        assert family.labels(stage="a") is not family.labels(stage="b")
        with pytest.raises(ConfigurationError):
            family.labels(wrong="a")

    def test_reregistration_idempotent(self, registry):
        first = registry.counter("c_total", labelnames=("x",))
        assert registry.counter("c_total", labelnames=("x",)) is first
        with pytest.raises(ConfigurationError):
            registry.gauge("c_total")
        with pytest.raises(ConfigurationError):
            registry.counter("c_total", labelnames=("y",))

    def test_reset_keeps_handles_valid(self, registry):
        counter = registry.counter("c_total").labels()
        counter.inc(5)
        registry.reset()
        assert counter.value == 0
        counter.inc()
        assert counter.value == 1

    def test_snapshot_merge_roundtrip(self, registry):
        registry.counter("c_total", labelnames=("k",)) \
            .labels(k="a").inc(2)
        registry.gauge("g").labels().set(3)
        registry.histogram("h", buckets=(1, 2)).labels().observe(1.5)
        snap = registry.snapshot()
        json.dumps(snap)

        other = MetricsRegistry()
        other.merge(snap)
        other.merge(snap)
        merged = other.snapshot()
        assert merged["c_total"]["series"][0]["value"] == 4
        assert merged["g"]["series"][0]["value"] == 3  # gauges take max
        assert merged["h"]["series"][0]["counts"] == [0, 2, 0]

    def test_snapshot_delta(self, registry):
        counter = registry.counter("c_total").labels()
        idle = registry.counter("idle_total").labels()
        counter.inc(2)
        idle.inc()
        before = registry.snapshot()
        counter.inc(5)
        delta = snapshot_delta(before, registry.snapshot())
        assert delta["c_total"]["series"][0]["value"] == 5
        assert "idle_total" not in delta  # zero-delta series dropped

    def test_delta_then_merge_equals_direct(self, registry):
        counter = registry.counter("c_total").labels()
        before = registry.snapshot()
        counter.inc(7)
        parent = MetricsRegistry(enabled=True)
        parent.counter("c_total").labels().inc(1)
        parent.merge(snapshot_delta(before, registry.snapshot()))
        assert parent.snapshot()["c_total"]["series"][0]["value"] == 8


class TestSnapshotDeltaEdges:
    """Merge/delta corners the process-pool aggregation path hits."""

    def test_pid_reuse_across_pool_restarts_adds(self):
        # A restarted pool can hand a new worker a recycled OS pid, so
        # two *different* worker lifetimes ship deltas for identically
        # labelled series.  Merging must add them (counters are
        # increments), never clobber one lifetime with the other.
        main = MetricsRegistry(enabled=True)
        for inc in (3, 2):  # two worker lifetimes, same pid label
            worker = MetricsRegistry(enabled=True)
            family = worker.counter("tasks_total",
                                    labelnames=("pid",))
            before = worker.snapshot()
            family.labels(pid="100").inc(inc)
            main.merge(snapshot_delta(before, worker.snapshot()))
        series = main.snapshot()["tasks_total"]["series"]
        assert series == [{"labels": {"pid": "100"}, "value": 5}]

    def test_series_only_in_after_passes_through(self, registry):
        before = registry.snapshot()
        registry.counter("late_total").labels().inc(4)
        hist = registry.histogram("lat_seconds", buckets=(1.0,))
        hist.labels().observe(0.5)
        delta = snapshot_delta(before, registry.snapshot())
        assert delta["late_total"]["series"][0]["value"] == 4
        assert delta["lat_seconds"]["series"][0]["counts"] == [1, 0]
        main = MetricsRegistry(enabled=True)
        main.merge(delta)  # families unknown to the target registry
        assert main.snapshot()["late_total"]["series"][0]["value"] == 4

    def test_empty_registry_delta_is_empty(self):
        registry = MetricsRegistry(enabled=True)
        assert snapshot_delta(registry.snapshot(),
                              registry.snapshot()) == {}

    def test_merge_of_empty_delta_changes_nothing(self, registry):
        registry.counter("c_total").labels().inc(2)
        before = registry.snapshot()
        registry.merge({})
        assert registry.snapshot() == before


class TestTracer:
    def test_disabled_returns_shared_noop(self):
        tracer = Tracer()
        assert tracer.span("a") is NOOP_SPAN
        with tracer.span("a") as span:
            span.set(x=1)
        assert tracer.spans == []

    def test_nesting_and_records(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer", kind="test") as outer:
            with tracer.span("inner"):
                pass
            outer.set(extra=2)
        inner, outer = tracer.spans
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id == 0
        assert outer.attrs == {"kind": "test", "extra": 2}
        assert outer.end_ns >= outer.start_ns
        for record in tracer.records():
            json.dumps(record)

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            pass
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(path)
        spans = load_spans_jsonl([path])
        assert [s["name"] for s in spans] == ["a"]

    def test_foreign_records_adopted(self):
        tracer = Tracer(enabled=True)
        tracer.add_records([{"span_id": 1, "parent_id": 0, "name": "w",
                             "start_ns": 0, "end_ns": 10, "attrs": {},
                             "pid": 99}])
        assert [r["name"] for r in tracer.records()] == ["w"]
        tracer.reset()
        assert tracer.records() == []


class TestExporters:
    def test_prometheus_rendering(self, registry):
        registry.counter("c_total", "a counter",
                         labelnames=("k",)).labels(k="a").inc(2)
        registry.histogram("h", buckets=(1, 2)).labels().observe(1.5)
        text = render_prometheus(registry)
        assert "# HELP c_total a counter" in text
        assert "# TYPE c_total counter" in text
        assert 'c_total{k="a"} 2' in text
        assert 'h_bucket{le="1"} 0' in text
        assert 'h_bucket{le="2"} 1' in text
        assert 'h_bucket{le="+Inf"} 1' in text
        assert "h_sum 1.5" in text
        assert "h_count 1" in text

    def test_prometheus_deterministic(self, registry):
        family = registry.counter("c_total", labelnames=("k",))
        family.labels(k="b").inc()
        family.labels(k="a").inc()
        other = MetricsRegistry(enabled=True)
        fam2 = other.counter("c_total", labelnames=("k",))
        fam2.labels(k="a").inc()
        fam2.labels(k="b").inc()
        assert render_prometheus(registry) == render_prometheus(other)

    def test_chrome_trace_schema(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        doc = chrome_trace(tracer.records())
        assert doc["displayTimeUnit"] == "ms"
        assert len(doc["traceEvents"]) == 2
        for event in doc["traceEvents"]:
            assert event["ph"] == "X"
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            assert {"name", "pid", "tid", "args"} <= set(event)
        json.dumps(doc)

    def test_flame_render(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        text = render_flame(tracer.records())
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child")
        assert render_flame([]) == "(no spans)"

    def test_flame_separates_pids(self):
        """A worker's span ids must not resolve against parent spans."""
        records = [
            {"span_id": 1, "parent_id": 0, "name": "parent",
             "start_ns": 0, "end_ns": 100, "attrs": {}, "pid": 1},
            {"span_id": 2, "parent_id": 1, "name": "work",
             "start_ns": 10, "end_ns": 90, "attrs": {}, "pid": 2},
        ]
        text = render_flame(records)
        assert not any(line.startswith("  work")
                       for line in text.splitlines())

    def test_write_obs_dir(self, tmp_path, registry):
        registry.counter("c_total").labels().inc()
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            pass
        paths = write_obs_dir(tmp_path / "obs", registry, tracer)
        names = sorted(p.name for p in paths)
        assert names == ["metrics.json", "metrics.prom", "trace.json",
                         "trace.jsonl"]
        for path in paths:
            assert path.exists()
        doc = json.loads((tmp_path / "obs" / "trace.json").read_text())
        assert doc["traceEvents"]


@pytest.fixture()
def live_obs():
    """Enable the process-wide registry/tracer, restoring after."""
    obs.reset()
    obs.enable()
    yield
    obs.disable()
    obs.reset()


class TestMetricLint:
    def test_clean_registry_passes(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("runs_total", "Completed runs")
        registry.gauge("queue_depth", "Live queue depth")
        registry.histogram("task_seconds", "Task wall time",
                           buckets=(1.0,))
        assert lint_metric_names(registry) == []

    def test_counter_without_total_suffix(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("runs", "Completed runs")
        problems = lint_metric_names(registry)
        assert len(problems) == 1
        assert "_total" in problems[0]

    def test_histogram_without_unit_suffix(self):
        registry = MetricsRegistry(enabled=True)
        registry.histogram("task_latency", "Task wall time",
                           buckets=(1.0,))
        problems = lint_metric_names(registry)
        assert len(problems) == 1
        assert "unit suffix" in problems[0]

    def test_missing_help(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("runs_total")
        problems = lint_metric_names(registry)
        assert len(problems) == 1
        assert "help" in problems[0]

    def test_gauges_need_no_suffix(self):
        registry = MetricsRegistry(enabled=True)
        registry.gauge("workers", "Pool size")
        assert lint_metric_names(registry) == []

    def test_violations_sorted_by_family(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("zeta", "Z")
        registry.counter("alpha", "A")
        problems = lint_metric_names(registry)
        assert [p.split(":")[0] for p in problems] == ["alpha", "zeta"]

    def test_live_registry_is_clean(self):
        # Import the instrumented modules so their families register,
        # then lint the real registry — the same check obs_smoke runs.
        import repro.core.relay   # noqa: F401
        import repro.exec.runner  # noqa: F401
        import repro.soak.driver  # noqa: F401

        assert lint_metric_names(obs.REGISTRY) == []


class TestTraceAnchors:
    def test_tracer_has_wall_anchor(self):
        tracer = Tracer(enabled=True)
        assert isinstance(tracer.wall_anchor_ns, int)
        with tracer.span("s"):
            pass
        (record,) = tracer.records()
        assert record["anchor_ns"] == tracer.wall_anchor_ns

    def test_merged_processes_align_on_wall_clock(self):
        # Two "processes" whose monotonic clocks have wildly different
        # origins but whose anchors place them 1 ms apart in wall time.
        spans = [
            {"name": "a", "start_ns": 7_000_000, "end_ns": 8_000_000,
             "anchor_ns": 1_000_000_000, "pid": 1},
            {"name": "b", "start_ns": 2_000_000, "end_ns": 3_000_000,
             "anchor_ns": 1_006_000_000, "pid": 2},
        ]
        doc = chrome_trace(spans)
        by_name = {e["name"]: e for e in doc["traceEvents"]}
        assert by_name["a"]["ts"] == 0.0
        assert by_name["b"]["ts"] == 1000.0  # +1 ms in wall time

    def test_missing_anchor_falls_back_to_monotonic(self):
        spans = [
            {"name": "a", "start_ns": 7_000_000, "end_ns": 8_000_000,
             "anchor_ns": 1_000_000_000, "pid": 1},
            {"name": "b", "start_ns": 2_000_000, "end_ns": 3_000_000,
             "pid": 2},  # pre-anchor record
        ]
        doc = chrome_trace(spans)
        by_name = {e["name"]: e for e in doc["traceEvents"]}
        # Raw monotonic alignment: b starts first.
        assert by_name["b"]["ts"] == 0.0
        assert by_name["a"]["ts"] == 5000.0


class TestInstrumentation:
    def test_simulator_metrics_and_span(self, live_obs):
        from repro.circuit.logic import Logic
        from repro.sim.engine import Simulator

        sim = Simulator()
        sim.drive("a", Logic.ZERO, 0)
        sim.drive("a", Logic.ONE, 10)
        sim.run(100)
        snap = obs.REGISTRY.snapshot()
        assert snap["repro_sim_events_total"]["series"][0]["value"] >= 2
        assert snap["repro_sim_toggles_total"]["series"][0]["value"] >= 1
        assert snap["repro_sim_queue_depth"]["series"][0]["value"] == 0
        assert any(s.name == "sim.run" for s in obs.TRACER.spans)

    def test_exec_counters(self, live_obs, tmp_path):
        from repro.exec import ResultCache, SweepRunner
        from repro.exec.runner import expand_grid

        cache = ResultCache(tmp_path)
        tasks = expand_grid("repro.exec.testing:square_task",
                            {"x": (1, 2)})
        SweepRunner(cache=cache).run(tasks)
        SweepRunner(cache=cache).run(tasks)
        snap = obs.REGISTRY.snapshot()
        by_status = {
            s["labels"]["status"]: s["value"]
            for s in snap["repro_exec_tasks_total"]["series"]}
        assert by_status.get("executed") == 2
        assert by_status.get("cached") == 2
        assert snap["repro_exec_events_processed_total"][
            "series"][0]["value"] == 2
        assert any(s.name == "sweep.run" for s in obs.TRACER.spans)

    def test_semantic_snapshot_excludes_nonsemantic(self, live_obs):
        obs.REGISTRY.counter("repro_exec_x_total").labels().inc()
        obs.REGISTRY.counter("repro_kernel_x_total").labels().inc()
        obs.REGISTRY.histogram("repro_x_seconds").labels().observe(1)
        obs.REGISTRY.counter("repro_graph_x_total").labels().inc()
        names = set(obs.semantic_snapshot())
        assert "repro_graph_x_total" in names
        assert "repro_exec_x_total" not in names
        assert "repro_kernel_x_total" not in names
        assert "repro_x_seconds" not in names
