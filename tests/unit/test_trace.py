"""Unit tests for workload traces."""

import pytest

from repro.errors import ConfigurationError
from repro.pipeline.graph_sim import GraphPipelineSimulation
from repro.processor.trace import Phase, WorkloadTrace, synthetic_trace
from repro.timing.graph import TimingGraph
from repro.variability import ConstantVariation


class TestPhase:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Phase(name="p", cycles=0, sensitization_scale=1.0)
        with pytest.raises(ConfigurationError):
            Phase(name="p", cycles=10, sensitization_scale=-1.0)


class TestTrace:
    @pytest.fixture
    def trace(self):
        return WorkloadTrace([
            Phase("a", 100, 2.0),
            Phase("b", 300, 0.5),
        ])

    def test_phase_lookup(self, trace):
        assert trace.phase_at(0).name == "a"
        assert trace.phase_at(99).name == "a"
        assert trace.phase_at(100).name == "b"
        assert trace.phase_at(399).name == "b"

    def test_repeats(self, trace):
        assert trace.phase_at(400).name == "a"
        assert trace.phase_at(500).name == "b"

    def test_scale_at(self, trace):
        assert trace.scale_at(50) == 2.0
        assert trace.scale_at(200) == 0.5

    def test_mean_scale(self, trace):
        assert trace.mean_scale() == pytest.approx(
            (100 * 2.0 + 300 * 0.5) / 400)

    def test_negative_cycle_rejected(self, trace):
        with pytest.raises(ConfigurationError):
            trace.phase_at(-1)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadTrace([])


class TestSyntheticTraces:
    @pytest.mark.parametrize("kind", ["compute", "memory", "mixed"])
    def test_kinds_build(self, kind):
        trace = synthetic_trace(kind)
        assert trace.total_cycles > 0
        assert len(trace.phases) >= 3

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            synthetic_trace("video")

    def test_seeded_jitter_changes_lengths(self):
        a = synthetic_trace("mixed", seed=1)
        b = synthetic_trace("mixed", seed=2)
        assert [p.cycles for p in a.phases] != \
            [p.cycles for p in b.phases]

    def test_unseeded_is_canonical(self):
        a = synthetic_trace("mixed")
        b = synthetic_trace("mixed")
        assert [p.cycles for p in a.phases] == \
            [p.cycles for p in b.phases]


class TestGraphSimIntegration:
    @pytest.fixture
    def graph(self):
        g = TimingGraph("t", 1000)
        g.add_ff("a")
        g.add_ff("b")
        g.add_edge("a", "b", 980)
        return g

    def test_trace_modulates_violation_pressure(self, graph):
        hot = WorkloadTrace([Phase("hot", 100, 5.0)])
        cold = WorkloadTrace([Phase("cold", 100, 0.1)])

        def run(trace):
            sim = GraphPipelineSimulation(
                graph, scheme="plain", percent_checking=30.0,
                sensitization_prob=0.1,
                variability=ConstantVariation(1.05),
                trace=trace, seed=4,
            )
            return sim.run(1000)

        assert run(hot).failed_unprotected > run(cold).failed_unprotected

    def test_trace_scale_clamped_to_probability_one(self, graph):
        trace = WorkloadTrace([Phase("max", 10, 1000.0)])
        sim = GraphPipelineSimulation(
            graph, scheme="plain", percent_checking=30.0,
            sensitization_prob=0.5,
            variability=ConstantVariation(1.05),
            trace=trace, seed=4,
        )
        result = sim.run(100)
        assert result.failed_unprotected == 100  # every cycle violates
