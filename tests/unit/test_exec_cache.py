"""Unit tests for the on-disk result cache and its JSON encoding."""

import json

import pytest

from repro.analysis.experiments import (
    Fig8Row,
    ResiliencePoint,
    ThroughputPoint,
)
from repro.errors import ConfigurationError
from repro.exec.cache import ResultCache, decode_result, encode_result
from repro.pipeline.pipeline import PipelineResult
from repro.timing.distribution import CriticalPathDistribution


def _pipeline_result() -> PipelineResult:
    return PipelineResult(
        scheme="timber-ff", cycles=1000, period_ps=1000, clean=900,
        masked=50, masked_flagged=10, detected=20, predicted=5,
        failed=0, replay_cycles=40, slow_cycles=12,
        total_time_ps=1_010_000, max_borrow_ps=120, borrow_chain_max=3,
    )


#: One instance of every experiment result dataclass the sweeps cache.
RESULT_SAMPLES = [
    _pipeline_result(),
    ResiliencePoint(technique="razor", droop_amplitude=0.08,
                    result=_pipeline_result()),
    ThroughputPoint(technique="canary", overclock_percent=4.0,
                    result=_pipeline_result()),
    Fig8Row(point="medium", checking_percent=30.0, style="ff",
            with_tb_interval=True, margin_percent=10.0,
            ffs_replaced=120, ffs_total=400,
            power_overhead_percent=7.25,
            relay_area_overhead_percent=1.5, relay_slack_percent=70.0),
    CriticalPathDistribution(percent_threshold=20.0, num_ffs=400,
                             num_endpoints=200, num_startpoints=90,
                             num_through=60),
]


class TestEncoding:
    @pytest.mark.parametrize("sample", RESULT_SAMPLES,
                             ids=lambda s: type(s).__name__)
    def test_round_trip_every_result_dataclass(self, sample):
        encoded = encode_result(sample)
        json.dumps(encoded)  # must be pure JSON
        assert decode_result(encoded) == sample

    def test_round_trip_containers(self):
        value = {"rows": [_pipeline_result()], "tag": (1, 2),
                 "n": None, "ok": True}
        decoded = decode_result(encode_result(value))
        assert decoded == value
        assert isinstance(decoded["tag"], tuple)

    def test_non_string_dict_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            encode_result({1: "x"})

    def test_unencodable_value_rejected(self):
        with pytest.raises(ConfigurationError):
            encode_result(object())


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for("exp", {"x": 1}, seed=3)
        assert cache.get(key) == (False, None)
        cache.put(key, _pipeline_result(), experiment="exp")
        hit, value = cache.get(key)
        assert hit and value == _pipeline_result()
        assert len(cache) == 1

    def test_key_depends_on_config_and_seed(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = cache.key_for("exp", {"x": 1}, seed=3)
        assert cache.key_for("exp", {"x": 2}, seed=3) != base
        assert cache.key_for("exp", {"x": 1}, seed=4) != base
        assert cache.key_for("other", {"x": 1}, seed=3) != base

    def test_code_version_invalidates(self, tmp_path):
        old = ResultCache(tmp_path, version="v1")
        key = old.key_for("exp", {}, seed=0)
        old.put(key, _pipeline_result())
        # Same key hashed under the new version differs...
        new = ResultCache(tmp_path, version="v2")
        assert new.key_for("exp", {}, seed=0) != key
        # ...and even a colliding key is rejected by the entry check.
        assert new.get(key) == (False, None)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for("exp", {}, seed=0)
        cache.put(key, _pipeline_result())
        (tmp_path / f"{key}.json").write_text("{not json",
                                              encoding="utf-8")
        assert cache.get(key) == (False, None)

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put(cache.key_for("exp", {"i": i}, seed=0), i)
        assert cache.clear() == 3
        assert len(cache) == 0
        assert cache.clear() == 0


class TestCorruptionInjection:
    """A damaged entry is logged, deleted, and rebuilt — never served."""

    def _stored(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for("exp", {"x": 1}, seed=0)
        cache.put(key, _pipeline_result(), experiment="exp")
        return cache, key, tmp_path / f"{key}.json"

    def test_truncated_entry_deleted_and_logged(self, tmp_path, caplog):
        import logging

        cache, key, path = self._stored(tmp_path)
        path.write_text(path.read_text(encoding="utf-8")[:37],
                        encoding="utf-8")
        with caplog.at_level(logging.WARNING, logger="repro.exec.cache"):
            assert cache.get(key) == (False, None)
        assert not path.exists()
        assert any("corrupted" in record.message
                   for record in caplog.records)

    def test_non_json_entry_deleted(self, tmp_path):
        cache, key, path = self._stored(tmp_path)
        path.write_bytes(b"\x00\xffgarbage")
        assert cache.get(key) == (False, None)
        assert not path.exists()

    def test_json_non_object_entry_deleted(self, tmp_path):
        cache, key, path = self._stored(tmp_path)
        path.write_text("[1, 2, 3]", encoding="utf-8")
        assert cache.get(key) == (False, None)
        assert not path.exists()

    def test_tampered_result_fails_checksum(self, tmp_path):
        cache, key, path = self._stored(tmp_path)
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["result"]["fields"]["failed"] = 999  # silent bit-flip
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert cache.get(key) == (False, None)
        assert not path.exists()

    def test_missing_checksum_field_deleted(self, tmp_path):
        cache, key, path = self._stored(tmp_path)
        entry = json.loads(path.read_text(encoding="utf-8"))
        del entry["checksum"]
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert cache.get(key) == (False, None)
        assert not path.exists()

    def test_stale_version_is_plain_miss_not_deleted(self, tmp_path):
        # A version mismatch is legitimate staleness, not corruption.
        old = ResultCache(tmp_path, version="v1")
        key = old.key_for("exp", {}, seed=0)
        old.put(key, _pipeline_result())
        new = ResultCache(tmp_path, version="v2")
        assert new.get(key) == (False, None)
        assert (tmp_path / f"{key}.json").exists()

    def test_rebuild_after_corruption(self, tmp_path):
        cache, key, path = self._stored(tmp_path)
        path.write_text("oops", encoding="utf-8")
        assert cache.get(key) == (False, None)
        cache.put(key, _pipeline_result(), experiment="exp")
        hit, value = cache.get(key)
        assert hit and value == _pipeline_result()
