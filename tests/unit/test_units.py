"""Unit tests for repro.units."""

import pytest

from repro import units


class TestConversions:
    def test_ns_to_ps(self):
        assert units.ns(1.5) == 1500

    def test_ps_rounds(self):
        assert units.ps(10.6) == 11

    def test_mhz_round_trip(self):
        period = units.mhz_to_period_ps(1000.0)
        assert period == 1000
        assert units.period_ps_to_mhz(period) == pytest.approx(1000.0)

    def test_mhz_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.mhz_to_period_ps(0)

    def test_period_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.period_ps_to_mhz(0)


class TestPercent:
    def test_percent_of(self):
        assert units.percent_of(1000, 30) == 300

    def test_percent_of_rounds(self):
        assert units.percent_of(1001, 10) == 100

    def test_percent_of_rejects_negative_period(self):
        with pytest.raises(ValueError):
            units.percent_of(-1, 10)

    def test_as_percent(self):
        assert units.as_percent(1, 4) == pytest.approx(25.0)

    def test_as_percent_zero_whole(self):
        assert units.as_percent(1, 0) == 0.0
