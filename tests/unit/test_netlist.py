"""Unit tests for the netlist structure."""

import pytest

from repro.circuit.cells import default_library
from repro.circuit.netlist import Netlist
from repro.errors import NetlistError


@pytest.fixture
def netlist():
    return Netlist("t", default_library())


def build_two_gate(netlist):
    netlist.add_input("a", registered=True)
    netlist.add_input("b", registered=True)
    netlist.add_gate("g1", "NAND2", ["a", "b"], "n1")
    netlist.add_gate("g2", "INV", ["n1"], "n2")
    netlist.add_output("n2", registered=True)
    return netlist


class TestConstruction:
    def test_basic_build(self, netlist):
        build_two_gate(netlist)
        netlist.validate()
        assert len(netlist) == 2
        assert netlist.launch_nets == ["a", "b"]
        assert netlist.capture_nets == ["n2"]

    def test_duplicate_gate_rejected(self, netlist):
        build_two_gate(netlist)
        with pytest.raises(NetlistError, match="duplicate"):
            netlist.add_gate("g1", "INV", ["n1"], "n3")

    def test_unknown_input_net_rejected(self, netlist):
        with pytest.raises(NetlistError, match="unknown net"):
            netlist.add_gate("g", "INV", ["missing"], "o")

    def test_arity_mismatch_rejected(self, netlist):
        netlist.add_input("a")
        with pytest.raises(NetlistError, match="expects 2"):
            netlist.add_gate("g", "NAND2", ["a"], "o")

    def test_multiple_drivers_rejected(self, netlist):
        netlist.add_input("a")
        netlist.add_gate("g1", "INV", ["a"], "o")
        with pytest.raises(NetlistError, match="multiple drivers"):
            netlist.add_gate("g2", "INV", ["a"], "o")

    def test_negative_extra_delay_rejected(self, netlist):
        netlist.add_input("a")
        with pytest.raises(NetlistError, match="negative"):
            netlist.add_gate("g", "INV", ["a"], "o", extra_delay_ps=-1)

    def test_output_of_unknown_net_rejected(self, netlist):
        with pytest.raises(NetlistError):
            netlist.add_output("missing")


class TestQueries:
    def test_fanout_and_driver(self, netlist):
        build_two_gate(netlist)
        assert [g.name for g in netlist.fanout_gates("n1")] == ["g2"]
        assert netlist.driver_gate("n1").name == "g1"
        assert netlist.driver_gate("a") is None

    def test_unknown_gate_raises(self, netlist):
        with pytest.raises(NetlistError):
            netlist.gate("nope")

    def test_unknown_net_raises(self, netlist):
        with pytest.raises(NetlistError):
            netlist.net("nope")

    def test_gate_delay_includes_extra(self, netlist):
        netlist.add_input("a")
        gate = netlist.add_gate("g", "INV", ["a"], "o", extra_delay_ps=8)
        assert gate.delay_ps == gate.cell.delay_ps + 8

    def test_stats(self, netlist):
        build_two_gate(netlist)
        stats = netlist.stats()
        assert stats["gates"] == 2
        assert stats["area"] > 0


class TestTopology:
    def test_topological_order_respects_dependencies(self, netlist):
        build_two_gate(netlist)
        order = [g.name for g in netlist.topological_gates()]
        assert order.index("g1") < order.index("g2")

    def test_retarget_capture(self, netlist):
        build_two_gate(netlist)
        netlist.add_gate("pad", "DLY4", ["n2"], "n2p")
        netlist.retarget_capture("n2", "n2p")
        assert netlist.capture_nets == ["n2p"]
        assert "n2p" in netlist.primary_outputs

    def test_retarget_unknown_capture_rejected(self, netlist):
        build_two_gate(netlist)
        with pytest.raises(NetlistError):
            netlist.retarget_capture("a", "n2")

    def test_dangling_net_fails_validation(self, netlist):
        # A net that is neither an input nor driven by a gate.
        netlist._declare_net("ghost")
        with pytest.raises(NetlistError, match="no driver"):
            netlist.validate()
