"""Unit tests for fault injection."""

import pytest

from repro.circuit.logic import Logic
from repro.errors import ConfigurationError
from repro.sequential.timber_latch import TimberLatch
from repro.sim.clocks import ClockGenerator
from repro.sim.engine import Simulator
from repro.sim.faults import FaultInjector

PERIOD = 1000


class TestSeu:
    def test_pulse_shape(self, sim):
        sim.set_initial("a", 0)
        injector = FaultInjector(sim)
        injector.inject_seu("a", at_ps=100, width_ps=50)
        sim.run(99)
        assert sim.value("a") is Logic.ZERO
        sim.run(120)
        assert sim.value("a") is Logic.ONE
        sim.run(200)
        assert sim.value("a") is Logic.ZERO

    def test_flips_whatever_value_is_present(self, sim):
        sim.set_initial("a", 1)
        FaultInjector(sim).inject_seu("a", at_ps=10, width_ps=20)
        sim.run(15)
        assert sim.value("a") is Logic.ZERO

    def test_logged(self, sim):
        injector = FaultInjector(sim)
        injector.inject_seu("a", at_ps=10, width_ps=20)
        assert injector.log[0].kind == "seu"
        assert injector.log[0].signal == "a"

    def test_validation(self, sim):
        with pytest.raises(ConfigurationError):
            FaultInjector(sim).inject_seu("a", at_ps=10, width_ps=0)

    def test_seu_in_ed_window_flagged_by_timber_latch(self):
        """An SEU landing between the master and slave closings makes
        them disagree on the falling edge — detected exactly like a late
        transition (the soft-error detection synergy)."""
        sim = Simulator()
        ClockGenerator(sim, "clk", PERIOD)
        sim.set_initial("d", 0)
        latch = TimberLatch(sim, name="l", d="d", clk="clk", q="q",
                            err="err", tb_ps=100, checking_ps=300)
        # Strike after the master closed (+100) and keep the flip until
        # after the slave closed (+300): master=0, slave=1 -> flag.
        FaultInjector(sim).inject_seu("d", at_ps=PERIOD + 200,
                                      width_ps=200)
        sim.run(2 * PERIOD)
        assert latch.flagged_count == 1

    def test_seu_inside_tb_not_flagged(self):
        sim = Simulator()
        ClockGenerator(sim, "clk", PERIOD)
        sim.set_initial("d", 0)
        latch = TimberLatch(sim, name="l", d="d", clk="clk", q="q",
                            err="err", tb_ps=100, checking_ps=300)
        # Strike and recover entirely inside the TB interval: both
        # latches sample the settled value.
        FaultInjector(sim).inject_seu("d", at_ps=PERIOD + 20,
                                      width_ps=40)
        sim.run(2 * PERIOD)
        assert latch.flagged_count == 0


class TestDelayFault:
    def test_shadow_signal_delayed_after_onset(self, sim):
        sim.set_initial("a", 0)
        injector = FaultInjector(sim)
        injector.inject_delay_fault("a", from_ps=100, extra_delay_ps=70)
        shadow = injector.delayed_name("a")
        changes = []
        sim.on_change(shadow, lambda s, n, v, t: changes.append((t, v)))
        sim.drive("a", 1, 50)    # before onset: passes straight through
        sim.drive("a", 0, 200)   # after onset: delayed by 70 ps
        sim.run(400)
        assert (50, Logic.ONE) in changes
        assert (270, Logic.ZERO) in changes

    def test_original_signal_untouched(self, sim):
        sim.set_initial("a", 0)
        FaultInjector(sim).inject_delay_fault("a", from_ps=0,
                                              extra_delay_ps=70)
        sim.drive("a", 1, 100)
        sim.run(101)
        assert sim.value("a") is Logic.ONE

    def test_validation(self, sim):
        with pytest.raises(ConfigurationError):
            FaultInjector(sim).inject_delay_fault("a", from_ps=0,
                                                  extra_delay_ps=0)


class TestStuckAt:
    def test_clamps_from_onset(self, sim):
        sim.set_initial("a", 1)
        FaultInjector(sim).inject_stuck_at("a", at_ps=100, value=0)
        sim.run(150)
        assert sim.value("a") is Logic.ZERO

    def test_overrides_later_drives(self, sim):
        sim.set_initial("a", 0)
        FaultInjector(sim).inject_stuck_at("a", at_ps=100, value=0)
        sim.drive("a", 1, 200)
        sim.run(250)
        assert sim.value("a") is Logic.ZERO


class TestPastTimeValidation:
    """Injecting behind the simulator clock is a configuration error,
    not a silently dropped (or time-travelling) event."""

    def test_seu_in_the_past_rejected(self, sim):
        sim.set_initial("a", 0)
        sim.drive("a", 1, 100)
        sim.run(500)
        with pytest.raises(ConfigurationError):
            FaultInjector(sim).inject_seu("a", at_ps=400, width_ps=50)

    def test_delay_fault_in_the_past_rejected(self, sim):
        sim.set_initial("a", 0)
        sim.drive("a", 1, 100)
        sim.run(500)
        with pytest.raises(ConfigurationError):
            FaultInjector(sim).inject_delay_fault("a", from_ps=100,
                                                  extra_delay_ps=70)

    def test_stuck_at_in_the_past_rejected(self, sim):
        sim.set_initial("a", 0)
        sim.drive("a", 1, 100)
        sim.run(500)
        with pytest.raises(ConfigurationError):
            FaultInjector(sim).inject_stuck_at("a", at_ps=499, value=0)

    def test_at_current_time_still_allowed(self, sim):
        sim.set_initial("a", 0)
        sim.run(500)
        FaultInjector(sim).inject_seu("a", at_ps=500, width_ps=50)
        sim.run(520)
        assert sim.value("a") is Logic.ONE


class TestSeuRestoreYields:
    """An SEU pulse must not clobber a functional drive that lands
    mid-pulse: the restore event detects the re-drive and yields."""

    def test_mid_pulse_redrive_wins(self, sim):
        sim.set_initial("a", 0)
        injector = FaultInjector(sim)
        injector.inject_seu("a", at_ps=100, width_ps=200)
        sim.drive("a", 1, 200)  # functional drive inside the pulse
        sim.run(150)
        assert sim.value("a") is Logic.ONE  # flipped by the strike
        sim.run(400)
        # Without yielding, the restore at 300 would rewrite 'a' back
        # to the pre-strike value and lose the functional drive.
        assert sim.value("a") is Logic.ONE

    def test_restore_still_applies_without_redrive(self, sim):
        sim.set_initial("a", 0)
        FaultInjector(sim).inject_seu("a", at_ps=100, width_ps=200)
        sim.run(400)
        assert sim.value("a") is Logic.ZERO

    def test_yield_logged(self, sim, caplog):
        import logging

        sim.set_initial("a", 0)
        FaultInjector(sim).inject_seu("a", at_ps=100, width_ps=200)
        sim.drive("a", 1, 200)
        with caplog.at_level(logging.INFO, logger="repro.sim.faults"):
            sim.run(400)
        assert any("yields" in record.message
                   for record in caplog.records)
