"""Unit tests for the logical error-masking baseline."""

import pytest

from repro.errors import ConfigurationError
from repro.pipeline.pipeline import PipelineSimulation
from repro.pipeline.schemes import LogicalMaskingPolicy
from repro.pipeline.stage import PipelineStage
from repro.variability import ConstantVariation


class TestPolicy:
    def test_full_coverage_masks_everything(self):
        policy = LogicalMaskingPolicy(5, coverage=1.0)
        assert len(policy.covered) == 5
        outcome = policy.capture(0, 100)
        assert outcome.masked
        assert outcome.borrowed_ps == 0  # combinational: no borrowing
        assert not outcome.flagged

    def test_zero_coverage_is_plain(self):
        policy = LogicalMaskingPolicy(5, coverage=0.0)
        assert policy.covered == frozenset()
        assert policy.capture(0, 100).failed

    def test_partial_coverage_deterministic(self):
        a = LogicalMaskingPolicy(50, coverage=0.5, seed=7)
        b = LogicalMaskingPolicy(50, coverage=0.5, seed=7)
        assert a.covered == b.covered
        assert 10 < len(a.covered) < 40

    def test_uncovered_boundary_fails(self):
        policy = LogicalMaskingPolicy(50, coverage=0.5, seed=7)
        uncovered = next(i for i in range(50) if i not in policy.covered)
        assert policy.capture(uncovered, 100).failed

    def test_on_time_is_clean_everywhere(self):
        policy = LogicalMaskingPolicy(5, coverage=1.0)
        outcome = policy.capture(0, -50)
        assert outcome.correct_state and not outcome.masked

    def test_coverage_validation(self):
        with pytest.raises(ConfigurationError):
            LogicalMaskingPolicy(5, coverage=1.5)


class TestPipelineIntegration:
    def test_no_throughput_cost_no_borrowing(self):
        stages = [
            PipelineStage(name=f"s{i}", critical_delay_ps=950,
                          typical_delay_ps=700, sensitization_prob=1.0)
            for i in range(4)
        ]
        policy = LogicalMaskingPolicy(4, coverage=1.0)
        sim = PipelineSimulation(stages, policy, period_ps=1000,
                                 variability=ConstantVariation(1.08))
        result = sim.run(20)
        assert result.failed == 0
        assert result.masked == 80
        # The signature difference vs TIMBER: zero borrowed time and
        # full throughput.
        assert result.max_borrow_ps == 0
        assert result.throughput_factor == 1.0

    def test_partial_coverage_leaks_failures(self):
        stages = [
            PipelineStage(name=f"s{i}", critical_delay_ps=950,
                          typical_delay_ps=700, sensitization_prob=1.0)
            for i in range(8)
        ]
        policy = LogicalMaskingPolicy(8, coverage=0.5, seed=3)
        sim = PipelineSimulation(stages, policy, period_ps=1000,
                                 variability=ConstantVariation(1.08))
        result = sim.run(10)
        assert result.failed > 0
        assert result.masked > 0
