"""Unit tests for capture policies (per-boundary scheme state)."""

import pytest

from repro.core.checking_period import CheckingPeriod
from repro.errors import ConfigurationError
from repro.pipeline.schemes import (
    CanaryPolicy,
    DcfPolicy,
    PlainPolicy,
    RazorPolicy,
    TimberFFPolicy,
    TimberLatchPolicy,
)

CP = CheckingPeriod.with_tb(1000, 30)


class TestPlain:
    def test_any_violation_fails(self):
        policy = PlainPolicy(3)
        assert policy.capture(0, 10).failed
        assert policy.capture(1, 0).correct_state

    def test_no_borrow_budget(self):
        assert PlainPolicy(2).max_borrowable_ps() == 0


class TestTimberFFPolicy:
    def test_relay_carries_select_downstream(self):
        policy = TimberFFPolicy(3, CP)
        outcome = policy.capture(0, 60)  # error at boundary 0
        assert outcome.masked
        policy.end_of_cycle([outcome])
        assert policy.select_in(1) == 1  # downstream boundary armed
        assert policy.select_in(0) == 0

    def test_armed_boundary_masks_two_stage(self):
        policy = TimberFFPolicy(3, CP)
        policy.end_of_cycle([policy.capture(0, 60)])
        outcome = policy.capture(1, 150)
        assert outcome.masked and outcome.flagged
        assert outcome.borrowed_intervals == 2

    def test_select_resets_after_clean_cycle(self):
        policy = TimberFFPolicy(3, CP)
        policy.end_of_cycle([policy.capture(0, 60)])
        policy.end_of_cycle([policy.capture(0, 0)])
        assert policy.select_in(1) == 0

    def test_relay_wraps_around_pipeline(self):
        policy = TimberFFPolicy(3, CP)
        policy.capture(2, 60)  # last boundary errors
        policy.end_of_cycle([])
        assert policy.select_in(0) == 1  # circular pipeline

    def test_max_borrow_is_checking_period(self):
        assert TimberFFPolicy(2, CP).max_borrowable_ps() == CP.checking_ps

    def test_num_boundaries_validated(self):
        with pytest.raises(ConfigurationError):
            TimberFFPolicy(0, CP)


class TestTimberLatchPolicy:
    def test_stateless_continuous_masking(self):
        policy = TimberLatchPolicy(3, CP)
        outcome = policy.capture(0, 250)
        assert outcome.masked and outcome.flagged
        assert outcome.borrowed_ps == 250

    def test_no_relay_state(self):
        policy = TimberLatchPolicy(3, CP)
        policy.end_of_cycle([policy.capture(0, 250)])
        # A later boundary sees no select state; lateness is all it needs.
        outcome = policy.capture(1, 60)
        assert outcome.masked and not outcome.flagged


class TestRazorPolicy:
    def test_detection_and_penalty(self):
        policy = RazorPolicy(2, window_ps=300, replay_penalty=5)
        outcome = policy.capture(0, 100)
        assert outcome.detected
        assert policy.replay_penalty_cycles == 5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RazorPolicy(2, window_ps=0)
        with pytest.raises(ConfigurationError):
            RazorPolicy(2, window_ps=100, replay_penalty=0)


class TestCanaryPolicy:
    def test_prediction(self):
        policy = CanaryPolicy(2, guard_ps=150)
        assert policy.capture(0, -50).predicted
        assert policy.capture(0, 10).failed

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CanaryPolicy(2, guard_ps=0)


class TestDcfPolicy:
    def test_masking(self):
        policy = DcfPolicy(2, detect_window_ps=150, resample_delay_ps=300)
        outcome = policy.capture(0, 100)
        assert outcome.masked
        assert outcome.borrowed_ps == 300

    def test_max_borrow(self):
        policy = DcfPolicy(2, detect_window_ps=150, resample_delay_ps=300)
        assert policy.max_borrowable_ps() == 300
