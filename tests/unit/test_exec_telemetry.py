"""Unit tests for sweep run telemetry."""

import json
import logging

from repro.errors import ExecutionError
from repro.exec import ResultCache, SweepRunner
from repro.exec.runner import expand_grid
from repro.exec.telemetry import RunTelemetry, format_summary

SQUARE = "repro.exec.testing:square_task"
FLAKY = "repro.exec.testing:flaky_task"


def _run(**runner_kwargs):
    runner = SweepRunner(**runner_kwargs)
    runner.run(expand_grid(SQUARE, {"x": (1, 2, 3)}))
    return runner


class TestSummary:
    def test_summary_fields(self):
        runner = _run()
        summary = runner.last_run.summary
        assert summary["tasks"] == 3
        assert summary["cache_hits"] == 0
        assert summary["cache_misses"] == 3
        assert summary["events_processed"] == 3
        assert summary["wall_time_s"] > 0
        assert 0.0 <= summary["worker_utilization"] <= 1.0
        assert len(summary["per_task"]) == 3
        keys = {record["key"] for record in summary["per_task"]}
        assert keys == {"square_task[x=1]", "square_task[x=2]",
                        "square_task[x=3]"}

    def test_cache_hits_counted(self, tmp_path):
        cache = ResultCache(tmp_path)
        _run(cache=cache)
        warm = _run(cache=cache)
        summary = warm.last_run.summary
        assert summary["cache_hits"] == 3
        assert summary["cache_misses"] == 0
        assert summary["task_wall_time_s"]["total"] == 0.0

    def test_summary_is_json_able(self):
        json.dumps(_run().last_run.summary)

    def test_write_summary(self, tmp_path):
        runner = _run()
        path = tmp_path / "nested" / "summary.json"
        runner.telemetry.write_summary(path)
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded["tasks"] == 3

    def test_idle_telemetry_summary(self):
        summary = RunTelemetry().summary()
        assert summary["tasks"] == 0
        assert summary["worker_utilization"] == 0.0

    def test_kernel_mode_captured_at_start(self, monkeypatch):
        """``summary()`` reports the mode the run *started* under, even
        if the environment changes before the summary is taken."""
        from repro.kernels import SCALAR_ENV, kernel_mode

        monkeypatch.delenv(SCALAR_ENV, raising=False)
        telemetry = RunTelemetry()
        telemetry.start(workers=1, num_tasks=0)
        started_mode = kernel_mode()
        monkeypatch.setenv(SCALAR_ENV, "1")
        assert telemetry.summary()["kernel_mode"] == started_mode


class TestLoggingAndRendering:
    def test_structured_records_emitted(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro.exec"):
            _run()
        task_records = [r for r in caplog.records
                        if hasattr(r, "repro_task")]
        assert len(task_records) == 3
        assert task_records[0].repro_task["cached"] is False
        summaries = [r for r in caplog.records
                     if hasattr(r, "repro_summary")]
        assert len(summaries) == 1

    def test_format_summary_shows_hits_and_timings(self, tmp_path):
        cache = ResultCache(tmp_path)
        _run(cache=cache)
        text = format_summary(_run(cache=cache).last_run.summary)
        assert "cache hits: 3" in text
        cold = format_summary(_run().last_run.summary)
        assert "square_task[x=" in cold  # slowest-task timings listed
        assert "misses: 3" in cold

    def test_format_summary_excludes_resumed_from_slowest(self):
        """Resumed tasks replay with their *original* wall time, which
        must not crowd this run's genuinely slowest tasks."""
        summary = _run().last_run.summary
        for record in summary["per_task"]:
            record["resumed"] = True
            record["wall_time_s"] = 999.0
        text = format_summary(summary)
        assert "999.000s" not in text


class TestStructuredLogPayloads:
    """Every ``extra`` payload must survive ``json.dumps`` — log
    processors consume these records without parsing message text."""

    @staticmethod
    def _payloads(caplog, attr):
        return [getattr(r, attr) for r in caplog.records
                if hasattr(r, attr)]

    def test_task_and_summary_payloads(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro.exec"):
            _run()
        tasks = self._payloads(caplog, "repro_task")
        assert len(tasks) == 3
        for payload in tasks:
            assert isinstance(payload, dict)
            json.dumps(payload)
        (summary,) = self._payloads(caplog, "repro_summary")
        assert isinstance(summary, dict)
        json.dumps(summary)

    def test_retry_payloads(self, caplog, tmp_path):
        counter = tmp_path / "attempts"
        tasks = expand_grid(
            FLAKY, {"fail_times": (2,)},
            {"counter_path": str(counter)})
        with caplog.at_level(logging.WARNING, logger="repro.exec"):
            SweepRunner(retries=2).run(tasks)
        retries = self._payloads(caplog, "repro_retry")
        assert len(retries) == 2
        for payload in retries:
            assert isinstance(payload, dict)
            assert payload["key"].startswith("flaky_task[")
            json.dumps(payload)

    def test_crash_payloads(self, caplog):
        telemetry = RunTelemetry()
        task = expand_grid(SQUARE, {"x": (1,)})[0]
        with caplog.at_level(logging.WARNING, logger="repro.exec"):
            telemetry.record_crash(
                task, ExecutionError("worker died"))
        (crash,) = self._payloads(caplog, "repro_crash")
        assert isinstance(crash, dict)
        assert crash["key"] == task.key
        json.dumps(crash)
