"""Unit tests for sweep run telemetry."""

import json
import logging

from repro.exec import ResultCache, SweepRunner
from repro.exec.runner import expand_grid
from repro.exec.telemetry import RunTelemetry, format_summary

SQUARE = "repro.exec.testing:square_task"


def _run(**runner_kwargs):
    runner = SweepRunner(**runner_kwargs)
    runner.run(expand_grid(SQUARE, {"x": (1, 2, 3)}))
    return runner


class TestSummary:
    def test_summary_fields(self):
        runner = _run()
        summary = runner.last_run.summary
        assert summary["tasks"] == 3
        assert summary["cache_hits"] == 0
        assert summary["cache_misses"] == 3
        assert summary["events_processed"] == 3
        assert summary["wall_time_s"] > 0
        assert 0.0 <= summary["worker_utilization"] <= 1.0
        assert len(summary["per_task"]) == 3
        keys = {record["key"] for record in summary["per_task"]}
        assert keys == {"square_task[x=1]", "square_task[x=2]",
                        "square_task[x=3]"}

    def test_cache_hits_counted(self, tmp_path):
        cache = ResultCache(tmp_path)
        _run(cache=cache)
        warm = _run(cache=cache)
        summary = warm.last_run.summary
        assert summary["cache_hits"] == 3
        assert summary["cache_misses"] == 0
        assert summary["task_wall_time_s"]["total"] == 0.0

    def test_summary_is_json_able(self):
        json.dumps(_run().last_run.summary)

    def test_write_summary(self, tmp_path):
        runner = _run()
        path = tmp_path / "nested" / "summary.json"
        runner.telemetry.write_summary(path)
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded["tasks"] == 3

    def test_idle_telemetry_summary(self):
        summary = RunTelemetry().summary()
        assert summary["tasks"] == 0
        assert summary["worker_utilization"] == 0.0


class TestLoggingAndRendering:
    def test_structured_records_emitted(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro.exec"):
            _run()
        task_records = [r for r in caplog.records
                        if hasattr(r, "repro_task")]
        assert len(task_records) == 3
        assert task_records[0].repro_task["cached"] is False
        summaries = [r for r in caplog.records
                     if hasattr(r, "repro_summary")]
        assert len(summaries) == 1

    def test_format_summary_shows_hits_and_timings(self, tmp_path):
        cache = ResultCache(tmp_path)
        _run(cache=cache)
        text = format_summary(_run(cache=cache).last_run.summary)
        assert "cache hits: 3" in text
        cold = format_summary(_run().last_run.summary)
        assert "square_task[x=" in cold  # slowest-task timings listed
        assert "misses: 3" in cold
