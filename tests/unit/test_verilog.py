"""Unit tests for Verilog export."""

import pytest

from repro.circuit.cells import default_library
from repro.circuit.generate import inverter_chain, random_stage
from repro.circuit.netlist import Netlist
from repro.circuit.verilog import to_verilog, write_verilog


class TestBasicExport:
    def test_module_shape(self):
        chain = inverter_chain(3, name="chain3")
        text = to_verilog(chain)
        assert "module chain3 (" in text
        assert "input  wire in" in text
        assert text.strip().endswith("endmodule")

    def test_primitive_mapping(self):
        chain = inverter_chain(2)
        text = to_verilog(chain)
        assert text.count("not ") == 2

    def test_custom_module_name(self):
        chain = inverter_chain(1)
        text = to_verilog(chain, module_name="my top!")
        assert "module my_top_ (" in text

    def test_internal_wires_declared(self):
        chain = inverter_chain(3)
        text = to_verilog(chain)
        # n0 and n1 are internal; n2 is the output port.
        assert "  wire n0;" in text
        assert "  wire n1;" in text
        assert "  wire n2;" not in text

    def test_named_cell_instantiation(self):
        netlist = Netlist("muxy", default_library())
        netlist.add_input("a", registered=True)
        netlist.add_input("b", registered=True)
        netlist.add_input("s", registered=True)
        netlist.add_gate("m", "MUX2", ["a", "b", "s"], "y")
        netlist.add_output("y", registered=True)
        text = to_verilog(netlist)
        assert "MUX2 m (.Y(y), .A0(a), .A1(b), .A2(s));" in text

    def test_random_stage_exports_all_gates(self):
        stage = random_stage(num_inputs=4, num_outputs=2, depth=3,
                             width=5, seed=6)
        text = to_verilog(stage)
        instance_lines = [
            line for line in text.splitlines()
            if line.strip().startswith(("nand", "nor", "and", "or",
                                        "xor", "xnor", "not", "buf"))
        ]
        assert len(instance_lines) == len(stage)

    def test_gates_emitted_in_topological_order(self):
        chain = inverter_chain(4)
        text = to_verilog(chain)
        positions = [text.index(f"not inv{i} ") for i in range(4)]
        assert positions == sorted(positions)


class TestWrite:
    def test_write_to_file(self, tmp_path):
        path = tmp_path / "design.v"
        write_verilog(str(path), inverter_chain(2))
        assert "endmodule" in path.read_text()
