"""Unit tests for whole-graph pipeline simulation."""

import pytest

from repro.errors import ConfigurationError
from repro.pipeline.controller import CentralErrorController
from repro.pipeline.graph_sim import GraphPipelineSimulation
from repro.timing.graph import TimingGraph
from repro.variability import ConstantVariation


@pytest.fixture
def chain_graph():
    """a -> b -> c critical chain plus one relaxed edge."""
    g = TimingGraph("chain", 1000)
    for name in ("a", "b", "c", "d"):
        g.add_ff(name)
    g.add_edge("a", "b", 980)
    g.add_edge("b", "c", 980)
    g.add_edge("a", "d", 400)
    return g


def simulate(graph, scheme, *, factor=1.0, cycles=5, prob=1.0,
             controller=None, percent=30.0):
    sim = GraphPipelineSimulation(
        graph, scheme=scheme, percent_checking=percent,
        sensitization_prob=prob,
        variability=ConstantVariation(factor),
        controller=controller, seed=1,
    )
    return sim.run(cycles)


class TestConstruction:
    def test_scheme_validated(self, chain_graph):
        with pytest.raises(ConfigurationError):
            GraphPipelineSimulation(chain_graph, scheme="razor",
                                    percent_checking=30.0)

    def test_plain_protects_nothing(self, chain_graph):
        result = simulate(chain_graph, "plain")
        assert result.num_protected == 0

    def test_protected_are_critical_endpoints(self, chain_graph):
        sim = GraphPipelineSimulation(chain_graph, scheme="timber-ff",
                                      percent_checking=30.0)
        assert sim.protected == {"b", "c"}

    def test_candidate_edges_exclude_safe_paths(self, chain_graph):
        sim = GraphPipelineSimulation(chain_graph, scheme="timber-ff",
                                      percent_checking=30.0,
                                      max_variability_factor=1.1)
        candidates = {
            (e.src, e.dst)
            for edges in sim._candidates.values() for e in edges
        }
        # The 400 ps edge can never violate (400*1.1 + 300 < 1000).
        assert ("a", "d") not in candidates
        assert ("a", "b") in candidates

    def test_run_validation(self, chain_graph):
        sim = GraphPipelineSimulation(chain_graph, scheme="plain",
                                      percent_checking=30.0)
        with pytest.raises(ConfigurationError):
            sim.run(0)


class TestOutcomes:
    def test_no_variability_no_violations(self, chain_graph):
        result = simulate(chain_graph, "timber-ff", factor=1.0)
        assert result.violations == 0
        assert result.masked_fraction == 1.0

    def test_plain_fails_under_overdelay(self, chain_graph):
        result = simulate(chain_graph, "plain", factor=1.05)
        assert result.failed_unprotected > 0

    def test_timber_masks_single_stage(self, chain_graph):
        result = simulate(chain_graph, "timber-latch", factor=1.05,
                          cycles=3)
        assert result.failed == 0
        assert result.masked > 0

    def test_masked_borrow_bounded(self, chain_graph):
        result = simulate(chain_graph, "timber-latch", factor=1.05)
        assert result.max_borrow_ps <= 300

    def test_relay_enables_chained_masking(self, chain_graph):
        # Persistent +8%: b borrows a full interval, so c's arrival is
        # interval + violation > one interval — only maskable because
        # b's select_out reaches c through the relay.
        result = simulate(chain_graph, "timber-ff", factor=1.08,
                          cycles=2)
        assert result.failed == 0
        assert result.masked >= 3  # b twice, c (two-stage) once

    def test_flags_recorded_per_ff(self, chain_graph):
        result = simulate(chain_graph, "timber-ff", factor=1.08,
                          cycles=2)
        assert "c" in result.flags_per_ff


class TestControllerIntegration:
    def test_flags_drive_slowdown(self, chain_graph):
        controller = CentralErrorController(
            period_ps=1000, consolidation_latency_ps=1000,
            slowdown_factor=1.5, slowdown_cycles=10)
        result = simulate(chain_graph, "timber-ff", factor=1.08,
                          cycles=20, controller=controller)
        assert controller.flags_received > 0
        assert result.slow_cycles > 0
        assert result.failed == 0

    def test_slowdown_clears_violations(self, chain_graph):
        controller = CentralErrorController(
            period_ps=1000, consolidation_latency_ps=500,
            slowdown_factor=1.5, slowdown_cycles=100)
        result = simulate(chain_graph, "timber-ff", factor=1.08,
                          cycles=50, controller=controller)
        # Once slowed, 980*1.08 = 1058 < 1500: no more violations.
        assert result.violations < 50 * 2


class TestDeterminism:
    def test_same_seed_same_result(self, chain_graph):
        a = simulate(chain_graph, "timber-ff", factor=1.05, prob=0.5,
                     cycles=50)
        b = simulate(chain_graph, "timber-ff", factor=1.05, prob=0.5,
                     cycles=50)
        assert dataclasses_equal(a, b)

    def test_sensitization_rate(self, chain_graph):
        result = simulate(chain_graph, "plain", factor=1.05, prob=0.3,
                          cycles=2000)
        # Two always-candidate edges x 2000 cycles x 0.3 expected hits.
        expected = 2 * 2000 * 0.3
        assert result.failed_unprotected == pytest.approx(expected,
                                                          rel=0.15)


def dataclasses_equal(a, b) -> bool:
    return (a.masked, a.masked_flagged, a.failed, a.failed_unprotected,
            a.max_borrow_ps) == \
           (b.masked, b.masked_flagged, b.failed, b.failed_unprotected,
            b.max_borrow_ps)
