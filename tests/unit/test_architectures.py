"""Unit tests for baseline architecture models."""

import pytest

from repro.baselines.architectures import (
    ARCHITECTURES,
    architecture_by_key,
)
from repro.errors import ConfigurationError
from repro.pipeline.schemes import CapturePolicy


class TestRegistry:
    def test_all_keys_resolvable(self):
        for architecture in ARCHITECTURES:
            assert architecture_by_key(architecture.key) is architecture

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            architecture_by_key("nope")

    def test_policies_buildable(self):
        for architecture in ARCHITECTURES:
            policy = architecture.build_policy(4, 1000, 30.0)
            assert isinstance(policy, CapturePolicy)
            assert policy.num_boundaries == 4

    def test_build_validates_boundaries(self):
        with pytest.raises(ConfigurationError):
            architecture_by_key("razor").build_policy(0, 1000, 30.0)


class TestMarginSemantics:
    def test_timber_margin_follows_interval_split(self):
        timber = architecture_by_key("timber-ff")
        assert timber.margin_recovered_percent(30.0) == pytest.approx(10.0)
        assert timber.margin_recovered_percent(
            30.0, with_tb_interval=False) == pytest.approx(15.0)

    def test_canary_recovers_nothing(self):
        canary = architecture_by_key("canary")
        assert canary.margin_recovered_percent(30.0) == 0.0

    def test_plain_recovers_nothing(self):
        assert architecture_by_key("plain").margin_recovered_percent(
            30.0) == 0.0

    def test_razor_recovers_window(self):
        assert architecture_by_key("razor").margin_recovered_percent(
            30.0) == pytest.approx(30.0)


class TestStructuralClaims:
    def test_only_timber_ff_needs_relay(self):
        needing = {a.key for a in ARCHITECTURES if a.needs_relay}
        assert needing == {"timber-ff"}

    def test_state_corruption_flags(self):
        corrupting = {a.key for a in ARCHITECTURES
                      if a.corrupts_state_on_error}
        assert corrupting == {"plain", "razor"}

    def test_element_cells_exist_in_library(self, library):
        for architecture in ARCHITECTURES:
            assert library.sequential(architecture.element_cell) is not None
