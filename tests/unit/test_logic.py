"""Unit tests for three-valued logic."""

import pytest

from repro.circuit.logic import (
    Logic,
    logic_and,
    logic_mux,
    logic_not,
    logic_or,
    logic_xor,
    resolve_unknown,
)


class TestCoercion:
    @pytest.mark.parametrize("value,expected", [
        (0, Logic.ZERO), (1, Logic.ONE), (True, Logic.ONE),
        (False, Logic.ZERO), ("0", Logic.ZERO), ("1", Logic.ONE),
        ("X", Logic.X), ("x", Logic.X), (Logic.ONE, Logic.ONE),
    ])
    def test_from_value(self, value, expected):
        assert Logic.from_value(value) is expected

    def test_from_value_rejects_bad_int(self):
        with pytest.raises(ValueError):
            Logic.from_value(2)

    def test_from_value_rejects_bad_str(self):
        with pytest.raises(ValueError):
            Logic.from_value("z")

    def test_from_value_rejects_bad_type(self):
        with pytest.raises(TypeError):
            Logic.from_value(1.5)


class TestInvert:
    def test_invert(self):
        assert ~Logic.ZERO is Logic.ONE
        assert ~Logic.ONE is Logic.ZERO
        assert ~Logic.X is Logic.X


class TestAnd:
    def test_zero_dominates_x(self):
        assert logic_and([Logic.X, Logic.ZERO]) is Logic.ZERO

    def test_all_ones(self):
        assert logic_and([Logic.ONE, Logic.ONE]) is Logic.ONE

    def test_x_taints(self):
        assert logic_and([Logic.ONE, Logic.X]) is Logic.X

    def test_empty_is_one(self):
        assert logic_and([]) is Logic.ONE


class TestOr:
    def test_one_dominates_x(self):
        assert logic_or([Logic.X, Logic.ONE]) is Logic.ONE

    def test_all_zeros(self):
        assert logic_or([Logic.ZERO, Logic.ZERO]) is Logic.ZERO

    def test_x_taints(self):
        assert logic_or([Logic.ZERO, Logic.X]) is Logic.X


class TestXor:
    def test_basic(self):
        assert logic_xor([Logic.ONE, Logic.ZERO]) is Logic.ONE
        assert logic_xor([Logic.ONE, Logic.ONE]) is Logic.ZERO

    def test_any_x_gives_x(self):
        assert logic_xor([Logic.ONE, Logic.X]) is Logic.X

    def test_not(self):
        assert logic_not(Logic.ZERO) is Logic.ONE


class TestMux:
    def test_select_zero(self):
        assert logic_mux(Logic.ZERO, Logic.ONE, Logic.ZERO) is Logic.ONE

    def test_select_one(self):
        assert logic_mux(Logic.ONE, Logic.ONE, Logic.ZERO) is Logic.ZERO

    def test_x_select_agreeing_inputs(self):
        # Matches transmission-gate behaviour: both paths carry the same
        # value, so the output is defined even with an unknown select.
        assert logic_mux(Logic.X, Logic.ONE, Logic.ONE) is Logic.ONE

    def test_x_select_disagreeing_inputs(self):
        assert logic_mux(Logic.X, Logic.ONE, Logic.ZERO) is Logic.X

    def test_x_select_x_inputs(self):
        assert logic_mux(Logic.X, Logic.X, Logic.X) is Logic.X


class TestResolve:
    def test_prefers_known(self):
        assert resolve_unknown(Logic.ONE, Logic.ZERO) is Logic.ONE

    def test_falls_back_on_x(self):
        assert resolve_unknown(Logic.X, Logic.ZERO) is Logic.ZERO
