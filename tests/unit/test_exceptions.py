"""Unit tests for timing exceptions."""

import pytest

from repro.errors import ConfigurationError
from repro.timing.exceptions import (
    ExceptionKind,
    ExceptionSet,
    apply_exceptions,
    false_path,
    multicycle_path,
)
from repro.timing.graph import TimingEdge, TimingGraph


@pytest.fixture
def graph():
    g = TimingGraph("t", 1000)
    for name in ("cfg_reg", "alu_a", "alu_b", "out"):
        g.add_ff(name)
    g.add_edge("cfg_reg", "out", 990)   # config path: false
    g.add_edge("alu_a", "out", 950)     # real critical path
    g.add_edge("alu_b", "out", 980)     # 2-cycle multiplier path
    return g


class TestRules:
    def test_false_path_matching(self):
        rule = false_path(from_pattern="cfg_*")
        assert rule.matches(TimingEdge("cfg_reg", "out", 10))
        assert not rule.matches(TimingEdge("alu_a", "out", 10))

    def test_multicycle_requires_budget(self):
        with pytest.raises(ConfigurationError):
            multicycle_path(1)

    def test_false_path_rejects_cycles(self):
        with pytest.raises(ConfigurationError):
            from repro.timing.exceptions import TimingException
            TimingException(ExceptionKind.FALSE_PATH, cycles=2)


class TestClassification:
    def test_false_beats_multicycle(self):
        rules = ExceptionSet([
            multicycle_path(2, from_pattern="cfg_*"),
            false_path(from_pattern="cfg_*"),
        ])
        kind, budget = rules.classify(TimingEdge("cfg_reg", "out", 10))
        assert kind is ExceptionKind.FALSE_PATH
        assert budget == 0

    def test_first_multicycle_wins(self):
        rules = ExceptionSet([
            multicycle_path(2, from_pattern="alu_*"),
            multicycle_path(4, from_pattern="alu_b"),
        ])
        kind, budget = rules.classify(TimingEdge("alu_b", "out", 10))
        assert kind is ExceptionKind.MULTICYCLE
        assert budget == 2

    def test_unmatched_is_single_cycle(self):
        rules = ExceptionSet([false_path(from_pattern="cfg_*")])
        kind, budget = rules.classify(TimingEdge("alu_a", "out", 10))
        assert kind is None
        assert budget == 1


class TestApplication:
    @pytest.fixture
    def folded(self, graph):
        rules = ExceptionSet([
            false_path(from_pattern="cfg_*"),
            multicycle_path(2, from_pattern="alu_b"),
        ])
        return apply_exceptions(graph, rules)

    def test_false_path_removed(self, folded):
        assert not any(e.src == "cfg_reg" for e in folded.edges())

    def test_multicycle_delay_scaled(self, folded):
        edge = next(e for e in folded.edges() if e.src == "alu_b")
        assert edge.delay_ps == 490  # ceil(980 / 2)

    def test_normal_edge_untouched(self, folded):
        edge = next(e for e in folded.edges() if e.src == "alu_a")
        assert edge.delay_ps == 950

    def test_deployment_shrinks_with_exceptions(self, graph, folded):
        # Without exceptions all three paths look top-10% critical;
        # with them only the genuine ALU path remains.
        assert len(graph.critical_endpoints(10.0)) == 1  # 'out'
        assert graph.critical_fanin_count("out", 10.0) >= 0
        before = len(graph.critical_edges(10.0))
        after = len(folded.critical_edges(10.0))
        assert before == 3
        assert after == 1

    def test_structure_preserved(self, graph, folded):
        assert folded.num_ffs == graph.num_ffs
        assert folded.period_ps == graph.period_ps
