"""Unit tests for the voltage/energy conversion model."""

import pytest

from repro.errors import ConfigurationError
from repro.power.voltage import (
    EnergySavings,
    VoltageModel,
    margin_to_energy_savings,
)


class TestVoltageModel:
    def test_nominal_delay_factor_is_one(self):
        model = VoltageModel()
        assert model.delay_factor(model.nominal_vdd) == pytest.approx(1.0)

    def test_lower_vdd_slower(self):
        model = VoltageModel()
        assert model.delay_factor(0.8) > 1.0
        assert model.delay_factor(0.7) > model.delay_factor(0.8)

    def test_vdd_for_delay_factor_inverts(self):
        model = VoltageModel()
        for factor in (1.05, 1.2, 1.5):
            vdd = model.vdd_for_delay_factor(factor)
            if vdd > model.min_vdd:
                assert model.delay_factor(vdd) == pytest.approx(
                    factor, rel=1e-3)

    def test_vdd_clamped_at_min(self):
        model = VoltageModel(min_vdd=0.9)
        assert model.vdd_for_delay_factor(100.0) == 0.9

    def test_energy_factors_quadratic_cubic(self):
        model = VoltageModel()
        assert model.dynamic_energy_factor(0.5) == pytest.approx(0.25)
        assert model.leakage_factor(0.5) == pytest.approx(0.125)

    def test_total_power_mixes_components(self):
        model = VoltageModel()
        total = model.total_power_factor(0.8, leakage_fraction=0.5)
        expected = 0.5 * 0.64 + 0.5 * 0.512
        assert total == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            VoltageModel(threshold_v=1.5)
        with pytest.raises(ConfigurationError):
            VoltageModel().delay_factor(0.2)  # below threshold
        with pytest.raises(ConfigurationError):
            VoltageModel().vdd_for_delay_factor(0.5)
        with pytest.raises(ConfigurationError):
            VoltageModel().total_power_factor(0.8, leakage_fraction=2.0)


class TestMarginConversion:
    def test_zero_margin_zero_savings(self):
        savings = margin_to_energy_savings(0.0)
        assert savings.scaled_vdd == pytest.approx(1.0, abs=1e-3)
        assert savings.gross_savings_percent == pytest.approx(0.0,
                                                              abs=0.5)

    def test_savings_grow_with_margin(self):
        small = margin_to_energy_savings(5.0)
        large = margin_to_energy_savings(15.0)
        assert large.gross_savings_percent > small.gross_savings_percent
        assert large.scaled_vdd < small.scaled_vdd

    def test_net_savings_charge_overhead(self):
        gross = margin_to_energy_savings(10.0)
        net = margin_to_energy_savings(10.0,
                                       element_overhead_percent=8.0)
        assert net.net_savings_percent < gross.net_savings_percent
        assert net.gross_savings_percent == pytest.approx(
            gross.gross_savings_percent)

    def test_overhead_can_erase_savings(self):
        savings = margin_to_energy_savings(
            1.0, element_overhead_percent=50.0)
        assert savings.net_savings_percent < 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            margin_to_energy_savings(-1.0)
        with pytest.raises(ConfigurationError):
            margin_to_energy_savings(100.0)

    def test_savings_dataclass_math(self):
        savings = EnergySavings(margin_percent=10.0, scaled_vdd=0.9,
                                power_factor=0.8,
                                element_overhead_percent=10.0)
        assert savings.gross_savings_percent == pytest.approx(20.0)
        assert savings.net_savings_percent == pytest.approx(
            100 * (1 - 0.8 * 1.1))
