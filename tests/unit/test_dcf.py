"""Unit tests for the delay-compensation flip-flop baseline."""

import pytest

from repro.circuit.logic import Logic
from repro.errors import ConfigurationError
from repro.sequential.dcf import DelayCompensationFlipFlop
from repro.sim.clocks import ClockGenerator
from repro.sim.engine import Simulator

PERIOD = 1000
DETECT = 80
RESAMPLE = 200


@pytest.fixture
def dsim():
    sim = Simulator()
    ClockGenerator(sim, "clk", PERIOD)
    sim.set_initial("d", 0)
    ff = DelayCompensationFlipFlop(
        sim, name="dc", d="d", clk="clk", q="q",
        detect_window_ps=DETECT, resample_delay_ps=RESAMPLE)
    return sim, ff


class TestResampling:
    def test_clean_capture_no_resample(self, dsim):
        sim, ff = dsim
        sim.drive("d", 1, 500)
        sim.run(2 * PERIOD)
        assert sim.value("q") is Logic.ONE
        assert ff.borrow_events == []

    def test_transition_before_edge_triggers_resample(self, dsim):
        sim, ff = dsim
        sim.drive("d", 1, PERIOD - 40)  # inside detector half-window
        sim.run(2 * PERIOD)
        assert len(ff.borrow_events) == 1
        assert ff.borrow_events[0].resample_ps == PERIOD + RESAMPLE

    def test_transition_after_edge_masked(self, dsim):
        sim, ff = dsim
        sim.drive("d", 1, PERIOD + 50)  # detected after the edge
        sim.run(2 * PERIOD)
        assert sim.value("q") is Logic.ONE  # resample corrected
        event = ff.borrow_events[0]
        assert event.original_value is Logic.ZERO
        assert event.resampled_value is Logic.ONE

    def test_transition_outside_window_missed(self, dsim):
        sim, ff = dsim
        sim.drive("d", 1, PERIOD + DETECT + 50)
        sim.run(2 * PERIOD)
        assert ff.borrow_events == []
        assert sim.value("q") is Logic.ZERO  # silent corruption

    def test_one_resample_per_cycle(self, dsim):
        sim, ff = dsim
        sim.drive("d", 1, PERIOD + 20)
        sim.drive("d", 0, PERIOD + 60)  # second change, same window
        sim.run(2 * PERIOD)
        assert len(ff.borrow_events) == 1


class TestValidation:
    def test_rejects_bad_windows(self, sim):
        with pytest.raises(ConfigurationError):
            DelayCompensationFlipFlop(sim, name="dc", d="d", clk="clk",
                                      q="q", detect_window_ps=0,
                                      resample_delay_ps=100)
