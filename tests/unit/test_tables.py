"""Unit tests for plain-text table rendering."""

import pytest

from repro.analysis.tables import format_series, format_table
from repro.errors import ConfigurationError


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "value"],
                            [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[0].index("value") == lines[2].index("1")

    def test_float_formatting(self):
        text = format_table(["x"], [[3.14159]], float_digits=3)
        assert "3.142" in text

    def test_truncation(self):
        text = format_table(["x"], [["y" * 100]], max_col_width=10)
        assert "yyyyyyyyy…" in text

    def test_row_width_validated(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table([], [])


class TestFormatSeries:
    def test_pairs(self):
        text = format_series("s", [10, 20], [1.5, 2.5])
        assert "10=1.50" in text and "20=2.50" in text

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            format_series("s", [1], [1.0, 2.0])
