"""Unit tests for latch-level structural TIMBER circuits."""

import pytest

from repro.circuit.logic import Logic
from repro.core.structural import StructuralTimberFF, StructuralTimberLatch
from repro.errors import ConfigurationError
from repro.sim.clocks import ClockGenerator
from repro.sim.engine import Simulator

PERIOD = 1000
INTERVAL = 100


def make_ff(enabled=True, select=0):
    sim = Simulator()
    ClockGenerator(sim, "clk", PERIOD)
    sim.set_initial("d", 0)
    ff = StructuralTimberFF(sim, name="f", d="d", clk="clk", q="q",
                            err="err", interval_ps=INTERVAL,
                            enabled=enabled)
    ff.set_select(select)
    return sim, ff


def make_latch(enabled=True):
    sim = Simulator()
    ClockGenerator(sim, "clk", PERIOD)
    sim.set_initial("d", 0)
    latch = StructuralTimberLatch(sim, name="l", d="d", clk="clk", q="q",
                                  err="err", tb_ps=INTERVAL,
                                  checking_ps=3 * INTERVAL,
                                  enabled=enabled)
    return sim, latch


class TestStructuralFF:
    def test_clean_capture(self):
        sim, ff = make_ff()
        sim.drive("d", 1, 500)
        sim.run(2 * PERIOD)
        assert sim.value("q") is Logic.ONE
        assert sim.value("err") is Logic.ZERO

    def test_single_stage_masked_not_flagged(self):
        sim, ff = make_ff()
        sim.drive("d", 1, PERIOD + 60)
        sim.run(2 * PERIOD)
        assert sim.value("q") is Logic.ONE
        assert sim.value("err") is Logic.ZERO  # TB interval
        assert ff.select_out in (0, 1)  # reset on the next clean fall

    def test_select_out_set_after_error_cycle_fall(self):
        sim, ff = make_ff()
        sim.drive("d", 1, PERIOD + 60)
        sim.run(PERIOD + PERIOD // 2 + 50)  # just after the falling edge
        assert ff.select_out == 1

    def test_relayed_error_flags(self):
        sim, ff = make_ff(select=1)
        sim.drive("d", 1, PERIOD + 160)
        sim.run(2 * PERIOD)
        assert sim.value("q") is Logic.ONE
        assert sim.value("err") is Logic.ONE

    def test_disabled_is_conventional(self):
        sim, ff = make_ff(enabled=False)
        sim.drive("d", 1, PERIOD + 60)
        sim.run(2 * PERIOD)
        assert sim.value("q") is Logic.ZERO
        assert sim.value("err") is Logic.ZERO

    def test_clear_error(self):
        sim, ff = make_ff(select=1)
        sim.drive("d", 1, PERIOD + 160)
        sim.run(2 * PERIOD)
        ff.clear_error()
        sim.run(2 * PERIOD + 10)
        assert sim.value("err") is Logic.ZERO

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            StructuralTimberFF(sim, name="f", d="d", clk="clk", q="q",
                               err="e", interval_ps=0)


class TestStructuralLatch:
    def test_clean_capture(self):
        sim, latch = make_latch()
        sim.drive("d", 1, 500)
        sim.run(2 * PERIOD)
        assert sim.value("q") is Logic.ONE
        assert sim.value("err") is Logic.ZERO

    def test_tb_arrival_masked_silent(self):
        sim, latch = make_latch()
        sim.drive("d", 1, PERIOD + 60)
        sim.run(2 * PERIOD)
        assert sim.value("q") is Logic.ONE
        assert sim.value("err") is Logic.ZERO

    def test_ed_arrival_masked_flagged(self):
        sim, latch = make_latch()
        sim.drive("d", 1, PERIOD + 200)
        sim.run(2 * PERIOD)
        assert sim.value("q") is Logic.ONE
        assert sim.value("err") is Logic.ONE

    def test_glitch_propagates_to_q(self):
        sim, latch = make_latch()
        changes = []
        sim.on_change("q", lambda s, n, v, t: changes.append(v))
        sim.drive("d", 1, PERIOD + 120)
        sim.drive("d", 0, PERIOD + 200)
        sim.run(2 * PERIOD)
        assert Logic.ONE in changes and changes[-1] is Logic.ZERO

    def test_disabled_narrow_windows(self):
        sim, latch = make_latch(enabled=False)
        sim.drive("d", 1, PERIOD + 60)
        sim.run(2 * PERIOD)
        assert sim.value("q") is Logic.ZERO

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            StructuralTimberLatch(sim, name="l", d="d", clk="clk", q="q",
                                  err="e", tb_ps=200, checking_ps=100)
