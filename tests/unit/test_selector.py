"""Unit tests for endpoint-selection policies."""

import pytest

from repro.core.selector import (
    coverage_curve,
    endpoint_weights,
    select_all_critical,
    select_budgeted,
)
from repro.errors import ConfigurationError
from repro.timing.graph import TimingGraph


@pytest.fixture
def graph():
    g = TimingGraph("t", 1000)
    for name in ("a", "b", "c", "d", "e"):
        g.add_ff(name)
    g.add_edge("a", "b", 990)   # nearly at the edge: heavy weight
    g.add_edge("a", "c", 950)
    g.add_edge("a", "d", 910)   # barely critical at 10%: light weight
    g.add_edge("a", "e", 500)   # not critical
    return g


class TestWeights:
    def test_weights_cover_critical_endpoints_only(self, graph):
        weights = endpoint_weights(graph, 10.0)
        assert set(weights) == {"b", "c", "d"}

    def test_more_exposed_endpoints_weigh_more(self, graph):
        weights = endpoint_weights(graph, 10.0)
        assert weights["b"] > weights["c"] > weights["d"]

    def test_multiple_edges_accumulate(self, graph):
        graph.add_edge("c", "b", 980)
        weights = endpoint_weights(graph, 10.0)
        single = endpoint_weights_single(graph)
        assert weights["b"] > single

    def test_weight_bounds(self, graph):
        for weight in endpoint_weights(graph, 10.0).values():
            assert 0.0 <= weight <= 1.0  # one edge each here


def endpoint_weights_single(graph):
    threshold = graph.critical_threshold_ps(10.0)
    window = graph.period_ps - threshold
    return (990 - threshold) / window


class TestAllCritical:
    def test_selects_every_endpoint(self, graph):
        result = select_all_critical(graph, 10.0)
        assert result.selected == frozenset({"b", "c", "d"})
        assert result.coverage == 1.0
        assert result.power_overhead_percent > 0


class TestBudgeted:
    def test_zero_budget_selects_nothing(self, graph):
        result = select_budgeted(graph, 10.0, power_budget_percent=0.0)
        assert result.num_selected == 0
        assert result.coverage == 0.0

    def test_huge_budget_matches_all_critical(self, graph):
        budgeted = select_budgeted(graph, 10.0,
                                   power_budget_percent=100.0)
        full = select_all_critical(graph, 10.0)
        assert budgeted.selected == full.selected
        assert budgeted.coverage == pytest.approx(1.0)

    def test_greedy_takes_heaviest_first(self, graph):
        # Budget for exactly one element.
        from repro.power.models import DesignCostModel
        model = DesignCostModel()
        per_element = model.sequential_delta(
            "DFF", "TIMBER_FF", 1).total_power
        baseline = model.baseline_costs(graph).total_power
        one_element_budget = 100.0 * per_element / baseline * 1.01
        result = select_budgeted(
            graph, 10.0, power_budget_percent=one_element_budget)
        assert result.selected == frozenset({"b"})

    def test_budget_respected(self, graph):
        result = select_budgeted(graph, 10.0, power_budget_percent=5.0)
        assert result.power_overhead_percent <= 5.0 + 1e-9

    def test_validation(self, graph):
        with pytest.raises(ConfigurationError):
            select_budgeted(graph, 10.0, power_budget_percent=-1.0)


class TestCoverageCurve:
    def test_monotone_in_budget(self, graph):
        curve = coverage_curve(graph, 10.0, budgets=(0.0, 2.0, 5.0, 50.0))
        coverages = [r.coverage for r in curve]
        assert coverages == sorted(coverages)
        overheads = [r.power_overhead_percent for r in curve]
        assert overheads == sorted(overheads)

    def test_diminishing_returns(self, graph):
        graph.add_edge("c", "b", 985)  # make b even heavier
        curve = coverage_curve(graph, 10.0, budgets=(1.2, 2.4, 3.6))
        gains = [
            curve[0].coverage,
            curve[1].coverage - curve[0].coverage,
            curve[2].coverage - curve[1].coverage,
        ]
        nonzero = [g for g in gains if g > 0]
        assert nonzero == sorted(nonzero, reverse=True)
