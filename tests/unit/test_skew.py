"""Unit tests for useful-skew scheduling."""

import pytest

from repro.errors import AnalysisError
from repro.timing.graph import TimingGraph
from repro.timing.skew import schedule_useful_skew, skewed_graph


@pytest.fixture
def unbalanced():
    """a -> b (fast stage) -> c (slow stage): classic skew target."""
    g = TimingGraph("unbal", 1000)
    for name in ("a", "b", "c"):
        g.add_ff(name)
    g.add_edge("a", "b", 400)
    g.add_edge("b", "c", 990)
    return g


class TestScheduling:
    def test_improves_worst_slack(self, unbalanced):
        schedule = schedule_useful_skew(unbalanced, max_skew_ps=200)
        assert schedule.improvement_ps > 0
        assert schedule.worst_slack_after_ps > \
            schedule.worst_slack_before_ps

    def test_balances_toward_midpoint(self, unbalanced):
        # b launching earlier gives the slow stage extra time; with a
        # generous bound the two slacks equalise: (600+10)/2 each.
        schedule = schedule_useful_skew(unbalanced, max_skew_ps=500)
        slack_in = schedule.edge_slack_ps("a", "b", 400)
        slack_out = schedule.edge_slack_ps("b", "c", 990)
        assert abs(slack_in - slack_out) <= 2

    def test_respects_skew_bound(self, unbalanced):
        schedule = schedule_useful_skew(unbalanced, max_skew_ps=100)
        assert all(abs(s) <= 100 for s in schedule.offsets.values())

    def test_min_feasible_period_improves(self, unbalanced):
        schedule = schedule_useful_skew(unbalanced, max_skew_ps=200)
        assert schedule.min_feasible_period_ps() < 990
        assert schedule.min_feasible_period_ps(setup_ps=30) == \
            schedule.min_feasible_period_ps() + 30

    def test_balanced_graph_needs_no_skew(self):
        g = TimingGraph("bal", 1000)
        for name in ("x", "y", "z"):
            g.add_ff(name)
        g.add_edge("x", "y", 700)
        g.add_edge("y", "z", 700)
        schedule = schedule_useful_skew(g, max_skew_ps=200)
        assert schedule.improvement_ps == 0
        assert all(abs(s) <= 1 for s in schedule.offsets.values())

    def test_critical_cycle_cannot_improve(self):
        # Two equal critical edges forming a loop: the cycle mean bounds
        # any schedule; slack balancing must not hurt.
        g = TimingGraph("loop", 1000)
        g.add_ff("p")
        g.add_ff("q")
        g.add_edge("p", "q", 950)
        g.add_edge("q", "p", 950)
        schedule = schedule_useful_skew(g, max_skew_ps=300)
        assert schedule.worst_slack_after_ps >= \
            schedule.worst_slack_before_ps
        assert schedule.min_feasible_period_ps() >= 950

    def test_empty_graph_rejected(self):
        g = TimingGraph("empty", 1000)
        g.add_ff("only")
        with pytest.raises(AnalysisError):
            schedule_useful_skew(g, max_skew_ps=100)

    def test_negative_bound_rejected(self, unbalanced):
        with pytest.raises(AnalysisError):
            schedule_useful_skew(unbalanced, max_skew_ps=-1)


class TestSkewedGraph:
    def test_effective_delays_folded(self, unbalanced):
        schedule = schedule_useful_skew(unbalanced, max_skew_ps=200)
        folded = skewed_graph(unbalanced, schedule)
        offset_b = schedule.offsets["b"]
        edge_ab = next(e for e in folded.edges() if e.dst == "b")
        assert edge_ab.delay_ps == 400 + schedule.offsets["a"] - offset_b

    def test_folding_reduces_critical_endpoint_count(self, unbalanced):
        schedule = schedule_useful_skew(unbalanced, max_skew_ps=200)
        folded = skewed_graph(unbalanced, schedule)
        before = len(unbalanced.critical_endpoints(10.0))
        after = len(folded.critical_endpoints(10.0))
        # The 990 ps edge gained real slack: it leaves the top-10% band.
        assert after < before

    def test_folded_graph_same_structure(self, unbalanced):
        schedule = schedule_useful_skew(unbalanced, max_skew_ps=200)
        folded = skewed_graph(unbalanced, schedule)
        assert folded.num_ffs == unbalanced.num_ffs
        assert folded.num_edges == unbalanced.num_edges
