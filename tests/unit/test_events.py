"""Unit tests for events and the event queue."""

import pytest

from repro.circuit.logic import Logic
from repro.errors import SimulationError
from repro.sim.events import Event, EventQueue


def sig(t, name="s", value=Logic.ONE):
    return Event(t, signal=name, value=value)


class TestEventValidation:
    def test_signal_event(self):
        event = sig(10)
        assert event.signal == "s"

    def test_action_event(self):
        event = Event(5, action=lambda sim: None)
        assert event.action is not None

    def test_rejects_negative_time(self):
        with pytest.raises(SimulationError):
            sig(-1)

    def test_rejects_both_signal_and_action(self):
        with pytest.raises(SimulationError):
            Event(0, signal="s", value=Logic.ONE, action=lambda sim: None)

    def test_rejects_neither(self):
        with pytest.raises(SimulationError):
            Event(0)

    def test_rejects_signal_without_value(self):
        with pytest.raises(SimulationError):
            Event(0, signal="s")


class TestQueueOrdering:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(sig(30))
        queue.push(sig(10))
        queue.push(sig(20))
        times = [queue.pop().time_ps for _ in range(3)]
        assert times == [10, 20, 30]

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        queue.push(sig(10, name="first"))
        queue.push(sig(10, name="second"))
        assert queue.pop().signal == "first"
        assert queue.pop().signal == "second"

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()


class TestCancellation:
    def test_cancelled_event_skipped(self):
        queue = EventQueue()
        handle = queue.push(sig(10, name="cancelled"))
        queue.push(sig(20, name="kept"))
        queue.cancel(handle)
        assert queue.pop().signal == "kept"

    def test_cancel_is_idempotent(self):
        queue = EventQueue()
        handle = queue.push(sig(10))
        queue.push(sig(20))
        queue.cancel(handle)
        queue.cancel(handle)
        assert len(queue) == 1

    def test_len_tracks_live_events(self):
        queue = EventQueue()
        h1 = queue.push(sig(10))
        queue.push(sig(20))
        assert len(queue) == 2
        queue.cancel(h1)
        assert len(queue) == 1
        queue.pop()
        assert len(queue) == 0
        assert not queue

    def test_peek_skips_cancelled(self):
        queue = EventQueue()
        handle = queue.push(sig(5))
        queue.push(sig(15))
        queue.cancel(handle)
        assert queue.peek_time() == 15

    def test_peek_empty_returns_none(self):
        assert EventQueue().peek_time() is None

    def test_cancel_unknown_handle_is_noop(self):
        # Regression: cancelling a handle that was never issued used to
        # corrupt the live-event count.
        queue = EventQueue()
        queue.push(sig(10))
        queue.cancel(999)
        assert len(queue) == 1
        assert queue.pop().time_ps == 10

    def test_cancel_after_pop_is_noop(self):
        # Regression: the inertial-delay supersede path can race a
        # commit and cancel a handle that already fired; that must not
        # poison the queue's bookkeeping for later events.
        queue = EventQueue()
        h1 = queue.push(sig(10))
        assert queue.pop().time_ps == 10
        queue.cancel(h1)
        assert len(queue) == 0
        assert not queue
        queue.push(sig(20, name="later"))
        assert len(queue) == 1
        assert queue.peek_time() == 20
        assert queue.pop().signal == "later"

    def test_double_cancel_then_continue(self):
        queue = EventQueue()
        h1 = queue.push(sig(10))
        queue.push(sig(20, name="kept"))
        queue.cancel(h1)
        queue.cancel(h1)
        queue.cancel(h1)
        assert len(queue) == 1
        assert queue.peek_time() == 20
        assert queue.pop().signal == "kept"
        with pytest.raises(SimulationError):
            queue.pop()
