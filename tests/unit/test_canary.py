"""Unit tests for the canary flip-flop baseline."""

import pytest

from repro.circuit.logic import Logic
from repro.errors import ConfigurationError
from repro.sequential.canary import CanaryFlipFlop
from repro.sim.clocks import ClockGenerator
from repro.sim.engine import Simulator

PERIOD = 1000
GUARD = 150


@pytest.fixture
def csim():
    sim = Simulator()
    ClockGenerator(sim, "clk", PERIOD)
    sim.set_initial("d", 0)
    ff = CanaryFlipFlop(sim, name="c", d="d", clk="clk", q="q",
                        warn="warn", guard_ps=GUARD)
    return sim, ff


class TestPrediction:
    def test_early_data_no_warning(self, csim):
        sim, ff = csim
        sim.drive("d", 1, 500)  # well ahead of the guard band
        sim.run(2 * PERIOD)
        assert sim.value("q") is Logic.ONE
        assert ff.warning_count == 0

    def test_guard_band_arrival_warns(self, csim):
        sim, ff = csim
        sim.drive("d", 1, PERIOD - 50)  # inside [T-150, T)
        sim.run(2 * PERIOD)
        assert ff.warning_count == 1
        assert sim.value("warn") is Logic.ONE
        # Crucially the main sample is still correct: prediction fires
        # before any corruption.
        assert ff.warnings[0].main_value is Logic.ONE
        assert ff.warnings[0].canary_value is Logic.ZERO

    def test_boundary_just_outside_guard(self, csim):
        sim, ff = csim
        sim.drive("d", 1, PERIOD - GUARD - 10)
        sim.run(2 * PERIOD)
        assert ff.warning_count == 0

    def test_clear_warning(self, csim):
        sim, ff = csim
        sim.drive("d", 1, PERIOD - 50)
        sim.run(2 * PERIOD)
        ff.clear_warning()
        sim.run(2 * PERIOD + 10)
        assert sim.value("warn") is Logic.ZERO

    def test_repeated_cycles_track_history(self, csim):
        sim, ff = csim
        sim.drive("d", 1, PERIOD - 50)    # warn
        sim.drive("d", 0, PERIOD + 400)   # early for next edge: clean
        sim.run(3 * PERIOD)
        assert ff.warning_count == 1


class TestValidation:
    def test_rejects_zero_guard(self, sim):
        with pytest.raises(ConfigurationError):
            CanaryFlipFlop(sim, name="c", d="d", clk="clk", q="q",
                           warn="w", guard_ps=0)
