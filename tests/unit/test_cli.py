"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "TIMBER" in out
        assert "Rollback" in out

    def test_waveforms_ascii(self, capsys):
        assert main(["waveforms", "--style", "latch"]) == 0
        out = capsys.readouterr().out
        assert "clk" in out
        assert "stage2 flagged: True" in out

    def test_waveforms_vcd(self, tmp_path, capsys):
        path = tmp_path / "wave.vcd"
        assert main(["waveforms", "--vcd", str(path)]) == 0
        assert path.read_text().startswith("$timescale")

    def test_deploy(self, capsys):
        assert main(["deploy", "--point", "low", "--checking", "20",
                     "--style", "latch"]) == 0
        out = capsys.readouterr().out
        assert "power_overhead_percent" in out
        assert "margin_percent" in out

    def test_deploy_no_tb_changes_margin(self, capsys):
        main(["deploy", "--point", "low", "--checking", "30"])
        with_tb = capsys.readouterr().out
        main(["deploy", "--point", "low", "--checking", "30", "--no-tb"])
        without = capsys.readouterr().out

        def margin(text):
            line = next(l for l in text.splitlines()
                        if l.startswith("margin_percent"))
            return float(line.split()[-1])

        assert margin(with_tb) == pytest.approx(10.0)
        assert margin(without) == pytest.approx(15.0)

    def test_energy(self, capsys):
        assert main(["energy", "--checking", "30"]) == 0
        out = capsys.readouterr().out
        assert "TIMBER flip-flop" in out
        assert "scaled Vdd" in out


class TestSweepCommand:
    def test_sweep_resilience_no_cache(self, capsys):
        assert main(["sweep", "resilience", "--cycles", "300",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "timber-ff" in out
        assert "tasks: 20" in out        # run summary is printed
        assert "misses: 20" in out

    def test_sweep_uses_cache_and_writes_summary(self, tmp_path,
                                                 capsys):
        cache_dir = str(tmp_path / "cache")
        summary_path = tmp_path / "summary.json"
        argv = ["sweep", "shootout", "--cycles", "200",
                "--cache-dir", cache_dir]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--summary", str(summary_path)]) == 0
        out = capsys.readouterr().out
        assert "cache hits: 8" in out

        import json

        summary = json.loads(summary_path.read_text(encoding="utf-8"))
        assert summary["cache_hits"] == 8
        assert summary["tasks"] == 8

    def test_sweep_parallel_workers(self, capsys):
        assert main(["sweep", "throughput", "--cycles", "200",
                     "--workers", "2", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "effective speedup" in out
        assert "2 worker(s)" in out


class TestMonitorCommand:
    def run_dir(self, tmp_path):
        spool = str(tmp_path / "events.jsonl")
        assert main(["sweep", "fig1", "--cycles", "200", "--no-cache",
                     "--events", spool]) == 0
        return tmp_path

    def test_monitor_once_dashboard(self, tmp_path, capsys):
        run_dir = self.run_dir(tmp_path)
        capsys.readouterr()
        assert main(["monitor", str(run_dir), "--once"]) == 0
        out = capsys.readouterr().out
        assert "done" in out
        assert "progress" in out

    def test_monitor_json_schema(self, tmp_path, capsys):
        run_dir = self.run_dir(tmp_path)
        capsys.readouterr()
        assert main(["monitor", str(run_dir), "--once",
                     "--json"]) == 0
        import json

        body = json.loads(capsys.readouterr().out)
        assert body["schema"] == 2
        assert body["status"] == "done"
        assert body["kind"] == "sweep"
        assert body["done"] == body["total"] == 3
        assert body["run_id"].startswith("sweep-")

    def test_monitor_html_report(self, tmp_path, capsys):
        run_dir = self.run_dir(tmp_path)
        capsys.readouterr()
        report = tmp_path / "report.html"
        assert main(["monitor", str(run_dir), "--once",
                     "--html", str(report)]) == 0
        page = report.read_text(encoding="utf-8")
        assert "<html" in page
        assert "sweep-" in page

    def test_monitor_missing_stream_exits_2(self, tmp_path, capsys):
        assert main(["monitor", str(tmp_path / "absent")]) == 2
        assert "error" in capsys.readouterr().err

    def test_monitor_corrupt_stream_exits_2(self, tmp_path, capsys):
        spool = tmp_path / "events.jsonl"
        spool.write_text("not json\n{}\n", encoding="utf-8")
        assert main(["monitor", str(spool)]) == 2
        assert "error" in capsys.readouterr().err

    def test_follow_terminates_on_finished_run(self, tmp_path,
                                               capsys):
        run_dir = self.run_dir(tmp_path)
        capsys.readouterr()
        assert main(["monitor", str(run_dir), "--follow",
                     "--interval", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "done" in out
