"""Unit tests for the cost-assumption sensitivity analysis."""

import pytest

from repro.analysis.sensitivity import (
    SensitivityResult,
    overhead_sensitivity,
)
from repro.errors import AnalysisError
from repro.timing.graph import TimingGraph


@pytest.fixture(scope="module")
def graph():
    g = TimingGraph("t", 1000)
    for index in range(40):
        g.add_ff(f"f{index}")
    for index in range(20):
        g.add_edge(f"f{index}", f"f{index + 20}", 950)
    for index in range(20, 39):
        g.add_edge(f"f{index}", f"f{index + 1}", 500)
    return g


@pytest.fixture(scope="module")
def result(graph):
    return overhead_sensitivity(graph, percent_checking=10.0)


class TestSweep:
    def test_points_cover_requested_fractions(self, result):
        fractions = [p.sequential_power_fraction for p in result.points]
        assert fractions == [0.10, 0.15, 0.20, 0.30, 0.40]

    def test_overhead_monotone_in_fraction(self, result):
        """More sequential power share -> replacing FFs costs more."""
        ff = [p.ff_power_overhead_percent for p in result.points]
        latch = [p.latch_power_overhead_percent for p in result.points]
        assert ff == sorted(ff)
        assert latch == sorted(latch)

    def test_near_linear_in_fraction(self, result):
        """First-order model: overhead ~ fraction * replaced * (r-1)."""
        points = result.points
        ratio_low = (points[0].ff_power_overhead_percent
                     / points[0].sequential_power_fraction)
        ratio_high = (points[-1].ff_power_overhead_percent
                      / points[-1].sequential_power_fraction)
        assert ratio_high == pytest.approx(ratio_low, rel=0.25)

    def test_conclusion_robust_latch_cheaper(self, result):
        # The qualitative Fig.-8 conclusion must not depend on the
        # assumption: the latch is cheaper at every fraction.
        assert result.latch_always_cheaper()

    def test_ranges(self, result):
        lo, hi = result.ff_overhead_range
        assert 0 < lo < hi

    def test_result_type(self, result):
        assert isinstance(result, SensitivityResult)
        assert result.percent_checking == 10.0


class TestValidation:
    def test_bad_fraction_rejected(self, graph):
        with pytest.raises(AnalysisError):
            overhead_sensitivity(graph, fractions=(0.0,))

    def test_fraction_above_one_rejected(self, graph):
        with pytest.raises(AnalysisError):
            overhead_sensitivity(graph, fractions=(1.5,))
