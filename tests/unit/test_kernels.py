"""Scalar-vs-vectorized kernel equivalence (``repro.kernels``).

The vectorized Monte-Carlo path must be *bit-identical* to the scalar
reference — these tests run the same simulation twice in one process
(``REPRO_SCALAR_KERNELS=1`` toggled via monkeypatch, consulted at call
time) and compare whole result dataclasses with ``==``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.analysis.experiments import pipeline_point_task
from repro.kernels.rng import (
    key_id,
    mix32,
    mix32_batch,
    split64,
    std_gauss,
    std_gauss_batch,
    uniform01,
    uniform01_batch,
)
from repro.pipeline.controller import CentralErrorController
from repro.pipeline.graph_sim import GraphPipelineSimulation
from repro.processor.trace import Phase, WorkloadTrace
from repro.timing.graph import TimingGraph
from repro.timing.ssta import run_ssta
from repro.variability import (
    AgingVariation,
    CompositeVariation,
    ConstantVariation,
    LocalVariation,
    ProcessVariation,
    TemperatureDriftVariation,
    VoltageDroopVariation,
)

pytestmark = pytest.mark.skipif(
    not kernels.HAVE_NUMPY, reason="vectorized kernels need numpy")


def run_both_modes(monkeypatch, run):
    """Evaluate ``run()`` under each kernel mode; return both results."""
    monkeypatch.setenv(kernels.SCALAR_ENV, "1")
    assert kernels.kernel_mode() == "scalar"
    scalar = run()
    monkeypatch.delenv(kernels.SCALAR_ENV)
    assert kernels.kernel_mode() == "vector"
    vector = run()
    return scalar, vector


# ---------------------------------------------------------------------------
# RNG primitives
# ---------------------------------------------------------------------------

lanes = st.lists(st.integers(min_value=0, max_value=2**32 - 1),
                 min_size=1, max_size=6)


class TestRng:
    @given(lanes)
    @settings(max_examples=100, deadline=None)
    def test_mix32_batch_matches_scalar(self, values):
        batch = mix32_batch([np.array([v], dtype=np.uint32)
                             for v in values])
        assert int(batch[0]) == mix32(*values)

    @given(lanes)
    @settings(max_examples=100, deadline=None)
    def test_uniform_and_gauss_batch_match_scalar(self, values):
        arrays = [np.array([v], dtype=np.uint32) for v in values]
        u = uniform01_batch(mix32_batch(arrays))
        assert float(u[0]) == uniform01(mix32(*values))
        assert 0.0 <= float(u[0]) < 1.0
        z = std_gauss_batch(arrays)
        assert float(z[0]) == std_gauss(*values)

    def test_key_id_is_stable(self):
        assert key_id("stage0") == key_id("stage0")
        assert split64(key_id("stage0"))[1] == 0


# ---------------------------------------------------------------------------
# Variability: factor_batch == elementwise factor (hypothesis)
# ---------------------------------------------------------------------------

seeds = st.integers(min_value=0, max_value=2**63 - 1)


@st.composite
def simple_models(draw):
    kind = draw(st.sampled_from(
        ["constant", "local", "droop", "temperature", "aging",
         "process"]))
    if kind == "constant":
        return ConstantVariation(draw(st.floats(0.5, 1.5)))
    if kind == "local":
        return LocalVariation(
            sigma=draw(st.floats(0.0, 0.1)),
            max_factor=draw(st.one_of(st.none(), st.floats(1.0, 1.2))),
            seed=draw(seeds),
        )
    if kind == "droop":
        return VoltageDroopVariation(
            event_probability=draw(st.floats(0.0, 1.0)),
            duration_cycles=draw(st.integers(1, 12)),
            amplitude=draw(st.floats(0.0, 0.2)),
            amplitude_jitter=draw(st.floats(0.0, 0.5)),
            seed=draw(seeds),
        )
    if kind == "temperature":
        return TemperatureDriftVariation(
            amplitude=draw(st.floats(0.0, 0.1)),
            period_cycles=draw(st.integers(2, 10_000)),
        )
    if kind == "aging":
        return AgingVariation(
            max_degradation=draw(st.floats(0.0, 0.2)),
            time_constant_cycles=draw(st.floats(1e3, 1e9)),
            exponent=draw(st.floats(0.1, 1.0)),
        )
    return ProcessVariation(
        sigma=draw(st.floats(0.0, 0.1)),
        chip_sigma=draw(st.floats(0.0, 0.05)),
        seed=draw(seeds),
    )


@st.composite
def any_model(draw):
    if draw(st.booleans()):
        return draw(simple_models())
    return CompositeVariation(
        draw(st.lists(simple_models(), min_size=1, max_size=3)))


cycle_lists = st.lists(st.integers(min_value=0, max_value=2**40),
                       min_size=1, max_size=4, unique=True)
path_lists = st.lists(
    st.text(st.characters(min_codepoint=33, max_codepoint=126),
            min_size=1, max_size=10),
    min_size=1, max_size=3, unique=True)


class TestFactorBatchProperty:
    @given(model=any_model(), cycles=cycle_lists, paths=path_lists)
    @settings(max_examples=80, deadline=None)
    def test_batch_bitmatches_elementwise_factor(self, model, cycles,
                                                 paths):
        batch = np.broadcast_to(
            model.factor_batch(np.asarray(cycles, dtype=np.int64),
                               paths),
            (len(cycles), len(paths)))
        for i, cycle in enumerate(cycles):
            for j, path in enumerate(paths):
                assert float(batch[i, j]) == model.factor(cycle, path)


# ---------------------------------------------------------------------------
# Pipeline simulation: every scheme, identical PipelineResult
# ---------------------------------------------------------------------------

TECHNIQUES = ("plain", "timber-ff", "timber-latch", "razor", "canary",
              "dcf", "clock-stall", "logical")


def _pipeline_params(technique):
    return {
        "technique": technique,
        "sim_period_ps": 1000,
        "checking_percent": 30.0,
        "num_stages": 4,
        "num_cycles": 2500,
        "stage": {
            "prefix": "kq",
            "critical_delay_ps": 950,
            "typical_delay_ps": 700,
            "sensitization_prob": 0.08,
            "seed": 5,
        },
        "variability": [
            {"kind": "local", "sigma": 0.015, "max_factor": 1.04,
             "seed": 7},
            {"kind": "droop", "event_probability": 3e-3,
             "amplitude": 0.08, "amplitude_jitter": 0.0, "seed": 8},
        ],
    }


class TestPipelineEquivalence:
    @pytest.mark.parametrize("technique", TECHNIQUES)
    def test_scalar_and_vector_results_identical(self, monkeypatch,
                                                 technique):
        params = _pipeline_params(technique)
        scalar, vector = run_both_modes(
            monkeypatch, lambda: pipeline_point_task(params).value)
        assert scalar == vector

    def test_stress_produces_work_on_both_paths(self, monkeypatch):
        # Guard against a vacuous pass: this workload must actually
        # exercise the masking machinery, not just clean bulk skips.
        params = _pipeline_params("timber-ff")
        scalar, vector = run_both_modes(
            monkeypatch, lambda: pipeline_point_task(params).value)
        assert scalar == vector
        assert vector.masked > 0
        assert vector.clean > 0


class TestScalarFallback:
    """Configurations the block kernel cannot express take the scalar
    loop even when vectorization is enabled."""

    def test_feedback_scaler_runs_identically(self, monkeypatch):
        from repro.pipeline.dvfs import AdaptiveVoltageScaler
        from repro.pipeline.pipeline import PipelineSimulation
        from repro.pipeline.schemes import RazorPolicy
        from repro.pipeline.stage import PipelineStage

        def run():
            stages = [
                PipelineStage(name=f"fb{i}", critical_delay_ps=880,
                              typical_delay_ps=780,
                              sensitization_prob=0.3, seed=800 + i)
                for i in range(3)
            ]
            scaler = AdaptiveVoltageScaler(
                period_ps=1000, window_cycles=64, vdd_step=0.01,
                flag_budget=0)
            sim = PipelineSimulation(
                stages, RazorPolicy(3, window_ps=300, replay_penalty=5),
                period_ps=1000, controller=scaler,
                variability=CompositeVariation([
                    LocalVariation(sigma=0.01, max_factor=1.02, seed=81),
                    scaler,
                ]))
            assert not sim._vectorizable()
            return sim.run(1500)

        scalar, vector = run_both_modes(monkeypatch, run)
        assert scalar == vector


# ---------------------------------------------------------------------------
# Graph simulation: scheme x variability grid, identical results
# ---------------------------------------------------------------------------

def _chain_graph():
    graph = TimingGraph("chain", 1000)
    for name in ("a", "b", "c", "d"):
        graph.add_ff(name)
    graph.add_edge("a", "b", 980)
    graph.add_edge("b", "c", 980)
    graph.add_edge("a", "d", 400)
    return graph


def _graph_variability(kind):
    if kind == "constant":
        return ConstantVariation(1.05)
    droop = VoltageDroopVariation(
        event_probability=0.02, amplitude=0.08, amplitude_jitter=0.3,
        seed=5)
    if kind == "droop":
        return droop
    return CompositeVariation([
        LocalVariation(sigma=0.02, max_factor=1.06, seed=3), droop])


class TestGraphEquivalence:
    @pytest.mark.parametrize("scheme",
                             ["plain", "timber-ff", "timber-latch"])
    @pytest.mark.parametrize("kind", ["constant", "droop", "composite"])
    def test_scalar_and_vector_results_identical(self, monkeypatch,
                                                 scheme, kind):
        def run():
            sim = GraphPipelineSimulation(
                _chain_graph(), scheme=scheme, percent_checking=30.0,
                sensitization_prob=0.6,
                variability=_graph_variability(kind), seed=1)
            return sim.run(600)

        scalar, vector = run_both_modes(monkeypatch, run)
        assert scalar == vector
        assert vector.cycles == 600

    def test_traced_run_with_controller_identical(self, monkeypatch):
        trace = WorkloadTrace([
            Phase(name="hot", cycles=150, sensitization_scale=1.6),
            Phase(name="idle", cycles=250, sensitization_scale=0.05),
        ])

        def run():
            sim = GraphPipelineSimulation(
                _chain_graph(), scheme="timber-ff",
                percent_checking=30.0, sensitization_prob=0.5,
                variability=_graph_variability("composite"),
                controller=CentralErrorController(
                    period_ps=1000, consolidation_latency_ps=1000),
                trace=trace, seed=2)
            return sim.run(900)

        scalar, vector = run_both_modes(monkeypatch, run)
        assert scalar == vector

    def test_unit_trace_matches_untraced_run(self, monkeypatch):
        # Regression for the per-cycle threshold hoist in
        # ``_sensitized``: a trace scaling sensitization by exactly 1.0
        # must reproduce the untraced run, in either kernel mode.
        def run(trace):
            sim = GraphPipelineSimulation(
                _chain_graph(), scheme="timber-latch",
                percent_checking=30.0, sensitization_prob=0.4,
                variability=_graph_variability("composite"),
                trace=trace, seed=7)
            return sim.run(500)

        unit = WorkloadTrace([
            Phase(name="flat", cycles=100, sensitization_scale=1.0)])
        for mode in ("1", ""):
            monkeypatch.setenv(kernels.SCALAR_ENV, mode)
            assert run(unit) == run(None)


# ---------------------------------------------------------------------------
# SSTA: identical SstaResult over netlist x variability
# ---------------------------------------------------------------------------

class TestSstaEquivalence:
    @pytest.mark.parametrize("kind", ["constant", "local", "composite"])
    def test_inverter_chain_identical(self, monkeypatch, kind):
        from repro.circuit.generate import inverter_chain

        if kind == "constant":
            variability = ConstantVariation(1.1)
        elif kind == "local":
            variability = LocalVariation(sigma=0.05, seed=4)
        else:
            variability = CompositeVariation([
                LocalVariation(sigma=0.05, seed=4),
                VoltageDroopVariation(event_probability=0.05,
                                      amplitude=0.1, seed=5),
            ])
        netlist = inverter_chain(16)

        def run(period):
            return run_ssta(netlist, period, variability, trials=200)

        for period in (150, 400, 2000):
            scalar, vector = run_both_modes(
                monkeypatch, lambda: run(period))
            assert scalar == vector
            assert scalar._any_violations == vector._any_violations
        # The tightest period must actually violate somewhere, so the
        # equality above compares non-trivial statistics.
        assert run(150)._any_violations > 0

    def test_random_stage_identical(self, monkeypatch):
        from repro.circuit.generate import random_stage

        netlist = random_stage(num_inputs=4, num_outputs=3, depth=5,
                               width=6, seed=9)
        variability = CompositeVariation([
            LocalVariation(sigma=0.04, seed=11),
            TemperatureDriftVariation(amplitude=0.05,
                                      period_cycles=120),
        ])

        def run():
            return run_ssta(netlist, 400, variability, trials=150)

        scalar, vector = run_both_modes(monkeypatch, run)
        assert scalar == vector
