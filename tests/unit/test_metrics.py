"""Unit tests for derived metrics."""

import pytest

from repro.analysis.metrics import (
    failures_per_billion_cycles,
    masked_fraction,
    summarize_results,
)
from repro.errors import AnalysisError
from repro.pipeline.pipeline import PipelineResult


def make_result(**kwargs):
    defaults = dict(scheme="t", cycles=1000, period_ps=1000)
    defaults.update(kwargs)
    return PipelineResult(**defaults)


class TestMaskedFraction:
    def test_all_masked(self):
        result = make_result(masked=10)
        assert masked_fraction(result) == 1.0

    def test_mixed(self):
        result = make_result(masked=6, detected=2, failed=2)
        assert masked_fraction(result) == pytest.approx(0.6)

    def test_no_violations_counts_as_fully_masked(self):
        assert masked_fraction(make_result()) == 1.0


class TestFailureRate:
    def test_normalisation(self):
        result = make_result(cycles=1000, failed=2)
        assert failures_per_billion_cycles(result) == pytest.approx(2e6)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            failures_per_billion_cycles(make_result(cycles=0))


class TestSummary:
    def test_keys_and_grouping(self):
        results = [make_result(scheme="a", masked=1),
                   make_result(scheme="b", failed=1)]
        summary = summarize_results(results)
        assert set(summary) == {"a", "b"}
        assert summary["a"]["masked"] == 1.0
        assert summary["b"]["failures_per_1e9"] > 0
        for key in ("throughput_factor", "masked_fraction", "slow_cycles"):
            assert key in summary["a"]
