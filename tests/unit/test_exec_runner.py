"""Unit tests for the parallel sweep runner."""

import dataclasses

import pytest

from repro.errors import ConfigurationError, ExecutionError
from repro.exec import (
    ResultCache,
    SweepRunner,
    SweepTask,
    derive_seed,
    expand_grid,
)

ECHO = "repro.exec.testing:echo_task"
SQUARE = "repro.exec.testing:square_task"
FLAKY = "repro.exec.testing:flaky_task"


def _square_tasks(values, root_seed=7):
    return expand_grid(SQUARE, {"x": values}, root_seed=root_seed)


class TestDeriveSeed:
    def test_stable_across_interpreters(self):
        # SHA-256 over canonical JSON: these constants must never move
        # (a salted hash() would change them every process).
        assert derive_seed(0, "exp") == 5304603747316118249
        assert derive_seed(
            11, "repro.analysis.experiments:pipeline_point_task",
            [("droop_amplitude", 0.04), ("technique", "razor")],
        ) == 6655405220344259627

    def test_sensitive_to_every_part(self):
        base = derive_seed(1, "exp", "a")
        assert derive_seed(2, "exp", "a") != base
        assert derive_seed(1, "other", "a") != base
        assert derive_seed(1, "exp", "b") != base

    def test_non_negative_63_bit(self):
        for seed in range(20):
            value = derive_seed(seed, "exp")
            assert 0 <= value < 2 ** 63


class TestExpandGrid:
    def test_nested_loop_order(self):
        tasks = expand_grid(ECHO, {"a": (1, 2), "b": ("x", "y")})
        points = [(t.params["a"], t.params["b"]) for t in tasks]
        assert points == [(1, "x"), (1, "y"), (2, "x"), (2, "y")]
        assert [t.index for t in tasks] == [0, 1, 2, 3]

    def test_base_params_merged(self):
        tasks = expand_grid(ECHO, {"a": (1,)}, {"shared": 5})
        assert tasks[0].params == {"shared": 5, "a": 1}

    def test_seed_independent_of_other_grid_points(self):
        # Shrinking an axis must not reseed the surviving points.
        wide = expand_grid(ECHO, {"a": (1, 2, 3)}, root_seed=9)
        narrow = expand_grid(ECHO, {"a": (2,)}, root_seed=9)
        by_a = {t.params["a"]: t.seed for t in wide}
        assert narrow[0].seed == by_a[2]

    def test_empty_axes_rejected(self):
        with pytest.raises(ConfigurationError):
            expand_grid(ECHO, {})


class TestSerialExecution:
    def test_results_in_task_order(self):
        runner = SweepRunner()
        values = runner.run_values(_square_tasks((3, 1, 2)))
        assert values == [9, 1, 4]

    def test_events_and_timings_recorded(self):
        runner = SweepRunner()
        run = runner.run(_square_tasks((2, 5)))
        assert run.summary["events_processed"] == 2
        assert run.summary["cache_misses"] == 2
        assert all(o.wall_time_s >= 0 for o in run.outcomes)

    def test_retry_once_then_succeed(self, tmp_path):
        task = SweepTask(
            experiment=FLAKY,
            params={"counter_path": str(tmp_path / "count"),
                    "fail_times": 1},
            index=0, seed=0, key="flaky[0]",
        )
        runner = SweepRunner()
        run = runner.run([task])
        assert run.outcomes[0].value == 2
        assert run.outcomes[0].attempts == 2
        assert len(run.summary["retries"]) == 1

    def test_persistent_failure_raises(self, tmp_path):
        task = SweepTask(
            experiment=FLAKY,
            params={"counter_path": str(tmp_path / "count"),
                    "fail_times": 10},
            index=0, seed=0, key="flaky[0]",
        )
        with pytest.raises(ExecutionError, match="flaky"):
            SweepRunner().run([task])

    def test_bad_experiment_path_rejected(self):
        task = SweepTask(experiment="not-a-dotted-path", params={},
                         index=0, seed=0, key="bad")
        with pytest.raises(ExecutionError):
            SweepRunner().run([task])

    def test_invalid_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepRunner(workers=0)


class TestParallelExecution:
    def test_parallel_matches_serial(self):
        tasks = _square_tasks(tuple(range(8)))
        serial = SweepRunner().run_values(tasks)
        parallel = SweepRunner(workers=3).run_values(tasks)
        assert parallel == serial

    def test_pool_retry_after_worker_failure(self, tmp_path):
        # First (pool) attempt fails; the in-parent serial retry wins.
        tasks = [
            SweepTask(
                experiment=FLAKY,
                params={"counter_path": str(tmp_path / f"count{i}"),
                        "fail_times": 1},
                index=i, seed=i, key=f"flaky[{i}]",
            )
            for i in range(2)
        ]
        run = SweepRunner(workers=2).run(tasks)
        assert [o.value for o in run.outcomes] == [2, 2]
        assert all(o.attempts == 2 for o in run.outcomes)

    def test_cache_hits_skip_execution(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tasks = _square_tasks((4, 6))
        cold = SweepRunner(workers=2, cache=cache).run(tasks)
        warm_runner = SweepRunner(workers=2, cache=cache)
        warm = warm_runner.run(tasks)
        assert warm.values == cold.values
        assert warm.summary["cache_hits"] == 2
        assert warm.summary["cache_misses"] == 0
        assert all(o.cached for o in warm.outcomes)


class TestSweepDeterminism:
    """The acceptance bar: parallel == serial for the real sweeps."""

    def test_resilience_sweep_parallel_equals_serial(self):
        from repro.analysis.experiments import resilience_sweep

        kwargs = dict(techniques=("plain", "timber-ff"),
                      droop_amplitudes=(0.0, 0.08), num_cycles=1000)
        serial = resilience_sweep(**kwargs)
        parallel = resilience_sweep(**kwargs,
                                    runner=SweepRunner(workers=2))
        assert serial == parallel
        # Byte-identical, not merely equal: the structured encodings of
        # every result must match exactly.
        from repro.exec.cache import encode_result
        import json

        assert json.dumps(encode_result(serial), sort_keys=True) == \
            json.dumps(encode_result(parallel), sort_keys=True)

    def test_throughput_sweep_parallel_equals_serial(self):
        from repro.analysis.experiments import throughput_sweep

        kwargs = dict(techniques=("timber-ff", "canary"),
                      overclock_percents=(0.0, 8.0), num_cycles=1000)
        assert throughput_sweep(**kwargs) == throughput_sweep(
            **kwargs, runner=SweepRunner(workers=2))


class TestTaskSpec:
    def test_resolve_requires_module_colon_function(self):
        task = SweepTask(experiment="repro.exec.testing", params={},
                         index=0, seed=0, key="k")
        with pytest.raises(ConfigurationError):
            task.resolve()

    def test_resolve_unknown_function(self):
        task = SweepTask(experiment="repro.exec.testing:nope", params={},
                         index=0, seed=0, key="k")
        with pytest.raises(ConfigurationError):
            task.resolve()

    def test_tasks_are_plain_data(self):
        task = _square_tasks((1,))[0]
        payload = dataclasses.asdict(task)
        assert payload["experiment"] == SQUARE
        assert SweepTask(**payload) == task
