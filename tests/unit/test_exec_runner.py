"""Unit tests for the parallel sweep runner."""

import dataclasses

import pytest

from repro.errors import ConfigurationError, ExecutionError
from repro.exec import (
    ResultCache,
    SweepRunner,
    SweepTask,
    derive_seed,
    expand_grid,
)

ECHO = "repro.exec.testing:echo_task"
SQUARE = "repro.exec.testing:square_task"
FLAKY = "repro.exec.testing:flaky_task"
KILLER = "repro.exec.testing:kill_worker_task"


def _square_tasks(values, root_seed=7):
    return expand_grid(SQUARE, {"x": values}, root_seed=root_seed)


class TestDeriveSeed:
    def test_stable_across_interpreters(self):
        # SHA-256 over canonical JSON: these constants must never move
        # (a salted hash() would change them every process).
        assert derive_seed(0, "exp") == 5304603747316118249
        assert derive_seed(
            11, "repro.analysis.experiments:pipeline_point_task",
            [("droop_amplitude", 0.04), ("technique", "razor")],
        ) == 6655405220344259627

    def test_sensitive_to_every_part(self):
        base = derive_seed(1, "exp", "a")
        assert derive_seed(2, "exp", "a") != base
        assert derive_seed(1, "other", "a") != base
        assert derive_seed(1, "exp", "b") != base

    def test_non_negative_63_bit(self):
        for seed in range(20):
            value = derive_seed(seed, "exp")
            assert 0 <= value < 2 ** 63


class TestExpandGrid:
    def test_nested_loop_order(self):
        tasks = expand_grid(ECHO, {"a": (1, 2), "b": ("x", "y")})
        points = [(t.params["a"], t.params["b"]) for t in tasks]
        assert points == [(1, "x"), (1, "y"), (2, "x"), (2, "y")]
        assert [t.index for t in tasks] == [0, 1, 2, 3]

    def test_base_params_merged(self):
        tasks = expand_grid(ECHO, {"a": (1,)}, {"shared": 5})
        assert tasks[0].params == {"shared": 5, "a": 1}

    def test_seed_independent_of_other_grid_points(self):
        # Shrinking an axis must not reseed the surviving points.
        wide = expand_grid(ECHO, {"a": (1, 2, 3)}, root_seed=9)
        narrow = expand_grid(ECHO, {"a": (2,)}, root_seed=9)
        by_a = {t.params["a"]: t.seed for t in wide}
        assert narrow[0].seed == by_a[2]

    def test_empty_axes_rejected(self):
        with pytest.raises(ConfigurationError):
            expand_grid(ECHO, {})


class TestSerialExecution:
    def test_results_in_task_order(self):
        runner = SweepRunner()
        values = runner.run_values(_square_tasks((3, 1, 2)))
        assert values == [9, 1, 4]

    def test_events_and_timings_recorded(self):
        runner = SweepRunner()
        run = runner.run(_square_tasks((2, 5)))
        assert run.summary["events_processed"] == 2
        assert run.summary["cache_misses"] == 2
        assert all(o.wall_time_s >= 0 for o in run.outcomes)

    def test_retry_once_then_succeed(self, tmp_path):
        task = SweepTask(
            experiment=FLAKY,
            params={"counter_path": str(tmp_path / "count"),
                    "fail_times": 1},
            index=0, seed=0, key="flaky[0]",
        )
        runner = SweepRunner()
        run = runner.run([task])
        assert run.outcomes[0].value == 2
        assert run.outcomes[0].attempts == 2
        assert len(run.summary["retries"]) == 1

    def test_persistent_failure_raises(self, tmp_path):
        task = SweepTask(
            experiment=FLAKY,
            params={"counter_path": str(tmp_path / "count"),
                    "fail_times": 10},
            index=0, seed=0, key="flaky[0]",
        )
        with pytest.raises(ExecutionError, match="flaky"):
            SweepRunner().run([task])

    def test_bad_experiment_path_rejected(self):
        task = SweepTask(experiment="not-a-dotted-path", params={},
                         index=0, seed=0, key="bad")
        with pytest.raises(ExecutionError):
            SweepRunner().run([task])

    def test_invalid_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepRunner(workers=0)


class TestParallelExecution:
    def test_parallel_matches_serial(self):
        tasks = _square_tasks(tuple(range(8)))
        serial = SweepRunner().run_values(tasks)
        parallel = SweepRunner(workers=3).run_values(tasks)
        assert parallel == serial

    def test_pool_retry_after_worker_failure(self, tmp_path):
        # First (pool) attempt fails; the in-parent serial retry wins.
        tasks = [
            SweepTask(
                experiment=FLAKY,
                params={"counter_path": str(tmp_path / f"count{i}"),
                        "fail_times": 1},
                index=i, seed=i, key=f"flaky[{i}]",
            )
            for i in range(2)
        ]
        run = SweepRunner(workers=2).run(tasks)
        assert [o.value for o in run.outcomes] == [2, 2]
        assert all(o.attempts == 2 for o in run.outcomes)

    def test_cache_hits_skip_execution(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tasks = _square_tasks((4, 6))
        cold = SweepRunner(workers=2, cache=cache).run(tasks)
        warm_runner = SweepRunner(workers=2, cache=cache)
        warm = warm_runner.run(tasks)
        assert warm.values == cold.values
        assert warm.summary["cache_hits"] == 2
        assert warm.summary["cache_misses"] == 0
        assert all(o.cached for o in warm.outcomes)


class TestSweepDeterminism:
    """The acceptance bar: parallel == serial for the real sweeps."""

    def test_resilience_sweep_parallel_equals_serial(self):
        from repro.analysis.experiments import resilience_sweep

        kwargs = dict(techniques=("plain", "timber-ff"),
                      droop_amplitudes=(0.0, 0.08), num_cycles=1000)
        serial = resilience_sweep(**kwargs)
        parallel = resilience_sweep(**kwargs,
                                    runner=SweepRunner(workers=2))
        assert serial == parallel
        # Byte-identical, not merely equal: the structured encodings of
        # every result must match exactly.
        from repro.exec.cache import encode_result
        import json

        assert json.dumps(encode_result(serial), sort_keys=True) == \
            json.dumps(encode_result(parallel), sort_keys=True)

    def test_throughput_sweep_parallel_equals_serial(self):
        from repro.analysis.experiments import throughput_sweep

        kwargs = dict(techniques=("timber-ff", "canary"),
                      overclock_percents=(0.0, 8.0), num_cycles=1000)
        assert throughput_sweep(**kwargs) == throughput_sweep(
            **kwargs, runner=SweepRunner(workers=2))


class TestBackoff:
    def test_disabled_by_default(self):
        runner = SweepRunner()
        task = _square_tasks((1,))[0]
        assert runner._backoff_delay_s(task, 1) == 0.0
        assert runner._backoff_delay_s(task, 5) == 0.0

    def test_exponential_growth(self):
        runner = SweepRunner(backoff_base_s=0.1, backoff_jitter=0.0)
        task = _square_tasks((1,))[0]
        delays = [runner._backoff_delay_s(task, a) for a in (1, 2, 3)]
        assert delays == [pytest.approx(0.1), pytest.approx(0.2),
                          pytest.approx(0.4)]

    def test_jitter_is_seeded_and_bounded(self):
        runner = SweepRunner(backoff_base_s=1.0, backoff_jitter=0.25)
        task = _square_tasks((1,))[0]
        first = runner._backoff_delay_s(task, 1)
        # Deterministic: same task + attempt -> same delay, always.
        assert runner._backoff_delay_s(task, 1) == first
        assert 0.75 <= first <= 1.25
        # Different attempts and different task seeds de-synchronise.
        assert runner._backoff_delay_s(task, 2) != 2.0 * first
        other = _square_tasks((1,), root_seed=8)[0]
        assert runner._backoff_delay_s(other, 1) != first

    def test_backoff_surfaced_in_telemetry(self, tmp_path):
        task = SweepTask(
            experiment=FLAKY,
            params={"counter_path": str(tmp_path / "count"),
                    "fail_times": 1},
            index=0, seed=0, key="flaky[0]",
        )
        runner = SweepRunner(backoff_base_s=0.01, backoff_jitter=0.0)
        run = runner.run([task])
        assert run.summary["retries"][0]["backoff_s"] == \
            pytest.approx(0.01)
        assert run.summary["backoff_s_total"] == pytest.approx(0.01)

    def test_invalid_backoff_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepRunner(backoff_base_s=-1.0)
        with pytest.raises(ConfigurationError):
            SweepRunner(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            SweepRunner(backoff_jitter=2.0)


class TestCrashQuarantine:
    def _killer(self, tmp_path, kill_times, index=0):
        return SweepTask(
            experiment=KILLER,
            params={"counter_path": str(tmp_path / f"kc{index}"),
                    "kill_times": kill_times},
            index=index, seed=100 + index, key=f"killer[{index}]",
        )

    def test_single_crash_recovers_in_isolation(self, tmp_path):
        # One worker death, then the task completes on the isolated
        # retry — the sweep finishes with a real value.
        tasks = [self._killer(tmp_path, kill_times=1),
                 _square_tasks((3,))[0]]
        tasks[1] = dataclasses.replace(tasks[1], index=1)
        run = SweepRunner(workers=2).run(tasks)
        assert run.outcomes[0].status == "done"
        assert run.outcomes[0].value == 2  # succeeded on attempt 2
        assert run.outcomes[1].value == 9

    def test_persistent_crasher_poisoned_not_fatal(self, tmp_path):
        tasks = [self._killer(tmp_path, kill_times=99),
                 _square_tasks((3,))[0]]
        tasks[1] = dataclasses.replace(tasks[1], index=1)
        run = SweepRunner(workers=2, poison_after=2).run(tasks)
        poisoned = run.outcomes[0]
        assert poisoned.status == "poisoned"
        assert poisoned.value is None
        assert run.summary["poisoned"] == ["killer[0]"]
        assert len(run.summary["crashes"]) == 2
        # Innocent bystanders still complete.
        assert run.outcomes[1].value == 9

    def test_innocent_neighbor_not_poisoned(self, tmp_path):
        # Several clean tasks share the pool with the crasher; all of
        # them must come back with values, not poison.
        tasks = [self._killer(tmp_path, kill_times=99)]
        for i, x in enumerate((2, 3, 4), start=1):
            tasks.append(dataclasses.replace(
                _square_tasks((x,))[0], index=i))
        run = SweepRunner(workers=2, poison_after=2).run(tasks)
        assert [o.status for o in run.outcomes] == \
            ["poisoned", "done", "done", "done"]
        assert run.values[1:] == [4, 9, 16]

    def test_poisoned_outcome_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        task = self._killer(tmp_path, kill_times=99)
        SweepRunner(workers=2, cache=cache, poison_after=2).run([task])
        assert cache.get_task(task) == (False, None)

    def test_invalid_poison_after_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepRunner(poison_after=0)


class TestTaskSpec:
    def test_resolve_requires_module_colon_function(self):
        task = SweepTask(experiment="repro.exec.testing", params={},
                         index=0, seed=0, key="k")
        with pytest.raises(ConfigurationError):
            task.resolve()

    def test_resolve_unknown_function(self):
        task = SweepTask(experiment="repro.exec.testing:nope", params={},
                         index=0, seed=0, key="k")
        with pytest.raises(ConfigurationError):
            task.resolve()

    def test_tasks_are_plain_data(self):
        task = _square_tasks((1,))[0]
        payload = dataclasses.asdict(task)
        assert payload["experiment"] == SQUARE
        assert SweepTask(**payload) == task
