"""Unit tests for the cycle-level pipeline simulation."""

import pytest

from repro.core.checking_period import CheckingPeriod
from repro.errors import ConfigurationError, TimingViolationError
from repro.pipeline.controller import CentralErrorController
from repro.pipeline.pipeline import PipelineSimulation
from repro.pipeline.schemes import (
    PlainPolicy,
    RazorPolicy,
    TimberFFPolicy,
    TimberLatchPolicy,
)
from repro.pipeline.stage import PipelineStage
from repro.variability import ConstantVariation

PERIOD = 1000
CP = CheckingPeriod.with_tb(PERIOD, 30)


def stages(n=3, critical=950, typical=700, prob=0.0, seed=1):
    return [
        PipelineStage(name=f"s{i}", critical_delay_ps=critical,
                      typical_delay_ps=typical, sensitization_prob=prob,
                      seed=seed + i)
        for i in range(n)
    ]


class TestCleanRuns:
    def test_error_free_pipeline(self):
        sim = PipelineSimulation(stages(), PlainPolicy(3),
                                 period_ps=PERIOD)
        result = sim.run(100)
        assert result.clean == 300
        assert result.failed == 0
        assert result.throughput_factor == 1.0
        assert result.total_time_ps == 100 * PERIOD

    def test_boundary_count_must_match(self):
        with pytest.raises(ConfigurationError):
            PipelineSimulation(stages(3), PlainPolicy(2),
                               period_ps=PERIOD)


class TestViolations:
    def test_plain_fails_on_overdelay(self):
        sim = PipelineSimulation(
            stages(critical=950, prob=1.0), PlainPolicy(3),
            period_ps=PERIOD, variability=ConstantVariation(1.1),
        )
        result = sim.run(10)
        assert result.failed == 30  # every capture violates

    def test_fail_fast_raises(self):
        sim = PipelineSimulation(
            stages(critical=950, prob=1.0), PlainPolicy(3),
            period_ps=PERIOD, variability=ConstantVariation(1.1),
            fail_fast=True,
        )
        with pytest.raises(TimingViolationError):
            sim.run(10)

    def test_timber_masks_sporadic_violations(self):
        # Sporadic sensitization: isolated +8% cycles violate by ~26 ps,
        # each masked in the TB interval with the chain resetting on the
        # next clean cycle.  (A *persistent* violation would rightly
        # exhaust the checking period — that is the controller's job.)
        sim = PipelineSimulation(
            stages(critical=950, prob=0.15, seed=5), TimberFFPolicy(3, CP),
            period_ps=PERIOD, variability=ConstantVariation(1.08),
        )
        result = sim.run(50)
        assert result.failed == 0
        assert result.masked > 0


class TestBorrowPropagation:
    def test_borrow_carries_to_next_stage(self):
        # Stage delays exactly at the period: a single +5% cycle of
        # variability on all stages creates chained lateness that the
        # latch policy absorbs continuously.
        sim = PipelineSimulation(
            stages(critical=990, prob=1.0), TimberLatchPolicy(3, CP),
            period_ps=PERIOD, variability=ConstantVariation(1.02),
        )
        result = sim.run(5)
        assert result.failed == 0
        assert result.max_borrow_ps > 0
        assert result.borrow_chain_max >= 1

    def test_relay_needed_for_ff_multi_stage(self):
        # Persistent +12% slowdown: each stage violates by ~120 ps > t,
        # so without relayed selects the discrete FF would fail.
        sim = PipelineSimulation(
            stages(critical=960, prob=1.0), TimberFFPolicy(3, CP),
            period_ps=PERIOD, variability=ConstantVariation(1.12),
        )
        result = sim.run(4)
        # First capture borrows one interval (lateness 75 <= 100);
        # following cycles need relayed selects to keep masking.
        assert result.masked >= 3


class TestControllerIntegration:
    def test_flag_reduces_frequency(self):
        controller = CentralErrorController(
            period_ps=PERIOD, consolidation_latency_ps=PERIOD,
            slowdown_factor=1.5, slowdown_cycles=4)
        sim = PipelineSimulation(
            stages(critical=960, prob=1.0), TimberFFPolicy(3, CP),
            period_ps=PERIOD, controller=controller,
            variability=ConstantVariation(1.12),
        )
        result = sim.run(20)
        assert controller.flags_received > 0
        assert result.slow_cycles > 0
        assert result.total_time_ps > 20 * PERIOD
        assert result.throughput_factor < 1.0

    def test_slowdown_suppresses_errors(self):
        controller = CentralErrorController(
            period_ps=PERIOD, consolidation_latency_ps=PERIOD,
            slowdown_factor=1.5, slowdown_cycles=50)
        sim = PipelineSimulation(
            stages(critical=960, prob=1.0), TimberFFPolicy(3, CP),
            period_ps=PERIOD, controller=controller,
            variability=ConstantVariation(1.12),
        )
        result = sim.run(40)
        # Once the controller slows the clock, captures become clean.
        assert result.clean > 0


class TestRazorAccounting:
    def test_replay_penalty_charged(self):
        sim = PipelineSimulation(
            stages(critical=950, prob=1.0),
            RazorPolicy(3, window_ps=300, replay_penalty=5),
            period_ps=PERIOD, variability=ConstantVariation(1.08),
        )
        result = sim.run(10)
        assert result.detected > 0
        assert result.replay_cycles == 5 * result.detected
        assert result.throughput_factor < 1.0


class TestResultMetrics:
    def test_capture_accounting_sums(self):
        sim = PipelineSimulation(
            stages(prob=0.5, seed=3), TimberLatchPolicy(3, CP),
            period_ps=PERIOD, variability=ConstantVariation(1.03),
        )
        result = sim.run(50)
        assert result.captures == 150

    def test_error_rate(self):
        sim = PipelineSimulation(stages(), PlainPolicy(3),
                                 period_ps=PERIOD)
        assert sim.run(10).error_rate == 0.0

    def test_run_validation(self):
        sim = PipelineSimulation(stages(), PlainPolicy(3),
                                 period_ps=PERIOD)
        with pytest.raises(ConfigurationError):
            sim.run(0)
