"""Unit tests for the behavioural TIMBER latch."""

import pytest

from repro.circuit.logic import Logic
from repro.errors import ConfigurationError
from repro.sequential.timber_latch import TimberLatch
from repro.sim.clocks import ClockGenerator
from repro.sim.engine import Simulator

PERIOD = 1000
TB = 100
CHECK = 300


@pytest.fixture
def lsim():
    sim = Simulator()
    ClockGenerator(sim, "clk", PERIOD)
    sim.set_initial("d", 0)
    latch = TimberLatch(sim, name="l", d="d", clk="clk", q="q", err="err",
                        tb_ps=TB, checking_ps=CHECK)
    return sim, latch


class TestConstruction:
    def test_rejects_zero_tb(self, sim):
        with pytest.raises(ConfigurationError):
            TimberLatch(sim, name="l", d="d", clk="clk", q="q", err="e",
                        tb_ps=0, checking_ps=100)

    def test_rejects_check_shorter_than_tb(self, sim):
        with pytest.raises(ConfigurationError):
            TimberLatch(sim, name="l", d="d", clk="clk", q="q", err="e",
                        tb_ps=200, checking_ps=100)


class TestNoError:
    def test_on_time_data_no_flag(self, lsim):
        sim, latch = lsim
        sim.drive("d", 1, 600)
        sim.run(2 * PERIOD)
        assert sim.value("q") is Logic.ONE
        assert sim.value("err") is Logic.ZERO
        assert latch.flagged_count == 0

    def test_never_flags_false_error(self, lsim):
        # The paper's guarantee: glitch-free on-time data cannot flag.
        sim, latch = lsim
        for cycle in range(1, 6):
            sim.drive("d", cycle % 2, cycle * PERIOD - 400)
        sim.run(7 * PERIOD)
        assert latch.flagged_count == 0


class TestContinuousBorrowing:
    def test_tb_arrival_masked_not_flagged(self, lsim):
        sim, latch = lsim
        sim.drive("d", 1, PERIOD + 60)  # inside the TB interval
        sim.run(2 * PERIOD)
        assert sim.value("q") is Logic.ONE
        assert sim.value("err") is Logic.ZERO
        borrow = latch.borrow_events
        assert len(borrow) == 1
        assert borrow[0].borrowed_ps == 60  # exactly the lateness
        assert not borrow[0].flagged

    def test_ed_arrival_masked_and_flagged(self, lsim):
        sim, latch = lsim
        sim.drive("d", 1, PERIOD + 200)  # past TB, inside checking period
        sim.run(2 * PERIOD)
        assert sim.value("q") is Logic.ONE   # still masked
        assert sim.value("err") is Logic.ONE
        assert latch.flagged_count == 1
        assert latch.borrow_events[0].borrowed_ps == 200

    def test_arrival_after_checking_period_missed(self, lsim):
        sim, latch = lsim
        sim.drive("d", 1, PERIOD + CHECK + 50)
        sim.run(2 * PERIOD)
        # The slave closed before the data arrived: old value captured.
        record = latch.records[-1]
        assert record.slave_value is Logic.ZERO

    def test_q_transitions_at_arrival_time(self, lsim):
        sim, latch = lsim
        changes = []
        sim.on_change("q", lambda s, n, v, t: changes.append((t, v)))
        sim.drive("d", 1, PERIOD + 150)
        sim.run(2 * PERIOD)
        ones = [t for t, v in changes if v is Logic.ONE]
        # Continuous borrowing: output follows arrival + latch delay,
        # not a discrete interval boundary.
        assert ones[0] == PERIOD + 150 + latch.clk_to_q_ps


class TestGlitchPropagation:
    def test_glitch_in_checking_period_reaches_q(self, lsim):
        sim, latch = lsim
        changes = []
        sim.on_change("q", lambda s, n, v, t: changes.append(v))
        # A 0->1->0 glitch inside the checking window.
        sim.drive("d", 1, PERIOD + 120)
        sim.drive("d", 0, PERIOD + 180)
        sim.run(2 * PERIOD)
        assert Logic.ONE in changes and changes[-1] is Logic.ZERO

    def test_glitch_settling_in_tb_does_not_flag(self, lsim):
        sim, latch = lsim
        # Glitch fully inside the TB interval: master and slave both see
        # the settled value on the falling edge.
        sim.drive("d", 1, PERIOD + 20)
        sim.drive("d", 0, PERIOD + 80)
        sim.run(2 * PERIOD)
        assert latch.flagged_count == 0


class TestDisabled:
    def test_disabled_is_conventional(self):
        sim = Simulator()
        ClockGenerator(sim, "clk", PERIOD)
        sim.set_initial("d", 0)
        TimberLatch(sim, name="l", d="d", clk="clk", q="q", err="err",
                    tb_ps=TB, checking_ps=CHECK, enabled=False)
        sim.drive("d", 1, PERIOD + 60)
        sim.run(2 * PERIOD)
        assert sim.value("q") is Logic.ZERO  # late data missed
        assert sim.value("err") is Logic.ZERO


class TestErrorClear:
    def test_clear(self, lsim):
        sim, latch = lsim
        sim.drive("d", 1, PERIOD + 200)
        sim.run(2 * PERIOD)
        latch.clear_error()
        sim.run(2 * PERIOD + 10)
        assert sim.value("err") is Logic.ZERO
