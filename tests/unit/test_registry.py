"""Unit tests for the Table-1 technique registry."""

import pytest

from repro.baselines.registry import (
    TABLE1_CATEGORIES,
    TABLE1_FEATURES,
    TechniqueCategory,
    category_of,
    table1_rows,
)


class TestTaxonomy:
    def test_four_categories(self):
        assert len(TABLE1_CATEGORIES) == 4
        assert [c.category for c in TABLE1_CATEGORIES] == [
            TechniqueCategory.ERROR_DETECTION,
            TechniqueCategory.ERROR_PREDICTION,
            TechniqueCategory.LOGICAL_MASKING,
            TechniqueCategory.TEMPORAL_MASKING,
        ]

    def test_paper_table1_claims(self):
        by_cat = {c.category: c for c in TABLE1_CATEGORIES}
        detection = by_cat[TechniqueCategory.ERROR_DETECTION]
        prediction = by_cat[TechniqueCategory.ERROR_PREDICTION]
        logical = by_cat[TechniqueCategory.LOGICAL_MASKING]
        temporal = by_cat[TechniqueCategory.TEMPORAL_MASKING]

        # Detection acts after the edge and needs rollback/replay.
        assert detection.when_relative_to_clock_edge == "After"
        assert "Rollback" in detection.error_recovery_mechanism

        # Prediction acts before the edge and recovers margin only
        # partially, targeting gradual variability.
        assert prediction.when_relative_to_clock_edge == "Before"
        assert prediction.timing_margin_recovery == "Partial"
        assert prediction.variability_source_targeted == "Gradual dynamic"

        # Logical masking: no clock-tree loading, no padding, moderate
        # combinational overhead, no sequential overhead.
        assert not logical.clock_tree_loading
        assert not logical.short_path_padding
        assert logical.sequential_overhead == "None"
        assert logical.combinational_overhead == "Moderate"

        # Temporal masking (TIMBER): full margin recovery, no rollback.
        assert temporal.timing_margin_recovery == "Full"
        assert "No error" in temporal.error_recovery_mechanism
        assert "TIMBER" in temporal.example_techniques

    def test_only_prediction_keeps_state_always_correct_pre_edge(self):
        before = [c for c in TABLE1_CATEGORIES
                  if c.when_relative_to_clock_edge == "Before"]
        assert len(before) == 1


class TestRendering:
    def test_rows_cover_all_features(self):
        rows = table1_rows()
        assert len(rows) == len(TABLE1_FEATURES)
        assert all(len(row) == 5 for row in rows)  # feature + 4 columns

    def test_booleans_rendered_yes_no(self):
        rows = table1_rows()
        loading = next(r for r in rows if r[0] == "Clock-tree loading")
        assert loading[1:] == ["Yes", "Yes", "No", "Yes"]

    def test_techniques_row_joined(self):
        rows = table1_rows()
        techniques = next(r for r in rows if r[0] == "Techniques")
        assert "TIMBER" in techniques[4]


class TestCategoryLookup:
    @pytest.mark.parametrize("key,expected", [
        ("razor", TechniqueCategory.ERROR_DETECTION),
        ("canary", TechniqueCategory.ERROR_PREDICTION),
        ("timber-ff", TechniqueCategory.TEMPORAL_MASKING),
        ("timber-latch", TechniqueCategory.TEMPORAL_MASKING),
        ("dcf", TechniqueCategory.TEMPORAL_MASKING),
    ])
    def test_category_of(self, key, expected):
        assert category_of(key) is expected

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            category_of("nonsense")
