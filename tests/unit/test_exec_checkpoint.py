"""Unit tests for sweep checkpointing and resume."""

import json
import logging
import os

import pytest

from repro.exec import (
    SweepCheckpoint,
    SweepRunner,
    SweepTask,
    atomic_write_json,
    compute_run_key,
    expand_grid,
)
from repro.exec.cache import _code_version

SQUARE = "repro.exec.testing:square_task"
KILLER = "repro.exec.testing:kill_worker_task"


def _tasks(values=(1, 2, 3, 4), root_seed=5):
    return expand_grid(SQUARE, {"x": values}, root_seed=root_seed)


class TestRunKey:
    def test_stable_for_same_tasks(self):
        assert compute_run_key(_tasks(), "v") == \
            compute_run_key(_tasks(), "v")

    def test_sensitive_to_grid_seed_and_version(self):
        base = compute_run_key(_tasks(), "v")
        assert compute_run_key(_tasks((1, 2, 3)), "v") != base
        assert compute_run_key(_tasks(root_seed=6), "v") != base
        assert compute_run_key(_tasks(), "v2") != base


class TestCheckpointFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "cp.json"
        tasks = _tasks()
        runner = SweepRunner(checkpoint=SweepCheckpoint(path, every=2))
        run = runner.run(tasks)
        assert path.exists()
        data = json.loads(path.read_text(encoding="utf-8"))
        assert data["run_key"] == compute_run_key(tasks,
                                                  _code_version())
        assert len(data["completed"]) == 4
        # Resume replays every task without executing anything.
        resumed = SweepRunner(
            checkpoint=SweepCheckpoint(path, resume=True)).run(tasks)
        assert resumed.values == run.values
        assert resumed.summary["resumed_tasks"] == 4
        assert all(o.resumed for o in resumed.outcomes)

    def test_partial_checkpoint_fills_the_gap(self, tmp_path):
        path = tmp_path / "cp.json"
        tasks = _tasks()
        reference = SweepRunner(
            checkpoint=SweepCheckpoint(path)).run(tasks)
        data = json.loads(path.read_text(encoding="utf-8"))
        del data["completed"]["1"]
        del data["completed"]["3"]
        path.write_text(json.dumps(data), encoding="utf-8")
        resumed = SweepRunner(
            checkpoint=SweepCheckpoint(path, resume=True)).run(tasks)
        assert resumed.values == reference.values
        assert resumed.summary["resumed_tasks"] == 2
        # The checkpoint is healed: all four tasks recorded again.
        final = json.loads(path.read_text(encoding="utf-8"))
        assert len(final["completed"]) == 4

    def test_without_resume_flag_file_is_ignored(self, tmp_path):
        path = tmp_path / "cp.json"
        tasks = _tasks()
        SweepRunner(checkpoint=SweepCheckpoint(path)).run(tasks)
        rerun = SweepRunner(checkpoint=SweepCheckpoint(path)).run(tasks)
        assert rerun.summary["resumed_tasks"] == 0

    def test_mismatched_run_key_ignored(self, tmp_path, caplog):
        path = tmp_path / "cp.json"
        SweepRunner(checkpoint=SweepCheckpoint(path)).run(_tasks())
        other = _tasks(root_seed=99)
        with caplog.at_level(logging.WARNING,
                             logger="repro.exec.checkpoint"):
            run = SweepRunner(
                checkpoint=SweepCheckpoint(path, resume=True)).run(other)
        assert run.summary["resumed_tasks"] == 0
        assert any("different run" in record.message
                   for record in caplog.records)

    def test_corrupt_checkpoint_ignored(self, tmp_path, caplog):
        path = tmp_path / "cp.json"
        tasks = _tasks()
        SweepRunner(checkpoint=SweepCheckpoint(path)).run(tasks)
        path.write_text("{truncated", encoding="utf-8")
        with caplog.at_level(logging.WARNING,
                             logger="repro.exec.checkpoint"):
            run = SweepRunner(
                checkpoint=SweepCheckpoint(path, resume=True)).run(tasks)
        assert run.summary["resumed_tasks"] == 0
        assert run.values == [1, 4, 9, 16]
        assert any("unreadable" in record.message
                   for record in caplog.records)

    def test_missing_file_with_resume_is_fresh_start(self, tmp_path):
        path = tmp_path / "nope.json"
        run = SweepRunner(
            checkpoint=SweepCheckpoint(path, resume=True)).run(_tasks())
        assert run.summary["resumed_tasks"] == 0
        assert path.exists()  # written by the end of the run

    def test_flush_before_load_rejected(self, tmp_path):
        checkpoint = SweepCheckpoint(tmp_path / "cp.json")
        with pytest.raises(RuntimeError):
            checkpoint.flush()


class TestAtomicWriteJson:
    def test_round_trip_and_no_droppings(self, tmp_path):
        path = tmp_path / "data.json"
        atomic_write_json(path, {"a": [1, 2, 3]})
        assert json.loads(path.read_text(encoding="utf-8")) == \
            {"a": [1, 2, 3]}
        atomic_write_json(path, {"a": [4]})
        assert json.loads(path.read_text(encoding="utf-8")) == \
            {"a": [4]}
        # No temp files survive a successful write.
        assert [p.name for p in tmp_path.iterdir()] == ["data.json"]

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "er" / "data.json"
        atomic_write_json(path, 7)
        assert json.loads(path.read_text(encoding="utf-8")) == 7

    def test_torn_write_never_corrupts_the_target(self, tmp_path,
                                                  monkeypatch):
        """A crash mid-write leaves the old complete document intact.

        Simulated by making the data unserializable partway through:
        ``json.dump`` streams, so by the time it raises, bytes have
        already been written — to the temp file, never the target.
        """
        path = tmp_path / "cp.json"
        atomic_write_json(path, {"generation": 1, "pad": "x" * 4096})
        before = path.read_bytes()

        class Exploding:
            def __iter__(self):
                raise RuntimeError("simulated crash mid-encode")

        with pytest.raises(TypeError):
            atomic_write_json(path, {"generation": 2,
                                     "bad": Exploding()})
        assert path.read_bytes() == before
        assert json.loads(path.read_text(encoding="utf-8"))[
            "generation"] == 1
        # The failed write's temp file was cleaned up.
        assert [p.name for p in tmp_path.iterdir()] == ["cp.json"]

    def test_torn_replace_leaves_old_or_new_never_mixed(
            self, tmp_path, monkeypatch):
        """Killing between fsync and rename keeps the old document."""
        path = tmp_path / "cp.json"
        atomic_write_json(path, {"generation": 1})
        real_replace = os.replace

        def crash_replace(src, dst):
            raise RuntimeError("simulated SIGKILL before rename")

        monkeypatch.setattr(os, "replace", crash_replace)
        with pytest.raises(RuntimeError):
            atomic_write_json(path, {"generation": 2})
        monkeypatch.setattr(os, "replace", real_replace)
        assert json.loads(path.read_text(encoding="utf-8"))[
            "generation"] == 1

    def test_flush_goes_through_atomic_write(self, tmp_path,
                                             monkeypatch):
        """SweepCheckpoint.flush persists via the atomic helper."""
        calls = []
        import repro.exec.checkpoint as checkpoint_module

        real = checkpoint_module.atomic_write_json

        def spy(path, data):
            calls.append(path)
            real(path, data)

        monkeypatch.setattr(checkpoint_module, "atomic_write_json",
                            spy)
        path = tmp_path / "cp.json"
        SweepRunner(checkpoint=SweepCheckpoint(path)).run(_tasks())
        assert calls and all(p == path for p in calls)


class TestPoisonedResume:
    def test_poisoned_status_survives_resume(self, tmp_path):
        task = SweepTask(
            experiment=KILLER,
            params={"counter_path": str(tmp_path / "kc"),
                    "kill_times": 99},
            index=0, seed=0, key="killer[0]",
        )
        path = tmp_path / "cp.json"
        first = SweepRunner(workers=2, poison_after=2,
                            checkpoint=SweepCheckpoint(path)).run([task])
        assert first.outcomes[0].status == "poisoned"
        resumed = SweepRunner(
            workers=2,
            checkpoint=SweepCheckpoint(path, resume=True)).run([task])
        # The quarantine verdict is replayed, not re-litigated (no
        # worker is sacrificed again).
        assert resumed.outcomes[0].status == "poisoned"
        assert resumed.outcomes[0].value is None
        assert resumed.summary["crashes"] == []
