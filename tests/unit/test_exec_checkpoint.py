"""Unit tests for sweep checkpointing and resume."""

import json
import logging

import pytest

from repro.exec import (
    SweepCheckpoint,
    SweepRunner,
    SweepTask,
    compute_run_key,
    expand_grid,
)
from repro.exec.cache import _code_version

SQUARE = "repro.exec.testing:square_task"
KILLER = "repro.exec.testing:kill_worker_task"


def _tasks(values=(1, 2, 3, 4), root_seed=5):
    return expand_grid(SQUARE, {"x": values}, root_seed=root_seed)


class TestRunKey:
    def test_stable_for_same_tasks(self):
        assert compute_run_key(_tasks(), "v") == \
            compute_run_key(_tasks(), "v")

    def test_sensitive_to_grid_seed_and_version(self):
        base = compute_run_key(_tasks(), "v")
        assert compute_run_key(_tasks((1, 2, 3)), "v") != base
        assert compute_run_key(_tasks(root_seed=6), "v") != base
        assert compute_run_key(_tasks(), "v2") != base


class TestCheckpointFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "cp.json"
        tasks = _tasks()
        runner = SweepRunner(checkpoint=SweepCheckpoint(path, every=2))
        run = runner.run(tasks)
        assert path.exists()
        data = json.loads(path.read_text(encoding="utf-8"))
        assert data["run_key"] == compute_run_key(tasks,
                                                  _code_version())
        assert len(data["completed"]) == 4
        # Resume replays every task without executing anything.
        resumed = SweepRunner(
            checkpoint=SweepCheckpoint(path, resume=True)).run(tasks)
        assert resumed.values == run.values
        assert resumed.summary["resumed_tasks"] == 4
        assert all(o.resumed for o in resumed.outcomes)

    def test_partial_checkpoint_fills_the_gap(self, tmp_path):
        path = tmp_path / "cp.json"
        tasks = _tasks()
        reference = SweepRunner(
            checkpoint=SweepCheckpoint(path)).run(tasks)
        data = json.loads(path.read_text(encoding="utf-8"))
        del data["completed"]["1"]
        del data["completed"]["3"]
        path.write_text(json.dumps(data), encoding="utf-8")
        resumed = SweepRunner(
            checkpoint=SweepCheckpoint(path, resume=True)).run(tasks)
        assert resumed.values == reference.values
        assert resumed.summary["resumed_tasks"] == 2
        # The checkpoint is healed: all four tasks recorded again.
        final = json.loads(path.read_text(encoding="utf-8"))
        assert len(final["completed"]) == 4

    def test_without_resume_flag_file_is_ignored(self, tmp_path):
        path = tmp_path / "cp.json"
        tasks = _tasks()
        SweepRunner(checkpoint=SweepCheckpoint(path)).run(tasks)
        rerun = SweepRunner(checkpoint=SweepCheckpoint(path)).run(tasks)
        assert rerun.summary["resumed_tasks"] == 0

    def test_mismatched_run_key_ignored(self, tmp_path, caplog):
        path = tmp_path / "cp.json"
        SweepRunner(checkpoint=SweepCheckpoint(path)).run(_tasks())
        other = _tasks(root_seed=99)
        with caplog.at_level(logging.WARNING,
                             logger="repro.exec.checkpoint"):
            run = SweepRunner(
                checkpoint=SweepCheckpoint(path, resume=True)).run(other)
        assert run.summary["resumed_tasks"] == 0
        assert any("different run" in record.message
                   for record in caplog.records)

    def test_corrupt_checkpoint_ignored(self, tmp_path, caplog):
        path = tmp_path / "cp.json"
        tasks = _tasks()
        SweepRunner(checkpoint=SweepCheckpoint(path)).run(tasks)
        path.write_text("{truncated", encoding="utf-8")
        with caplog.at_level(logging.WARNING,
                             logger="repro.exec.checkpoint"):
            run = SweepRunner(
                checkpoint=SweepCheckpoint(path, resume=True)).run(tasks)
        assert run.summary["resumed_tasks"] == 0
        assert run.values == [1, 4, 9, 16]
        assert any("unreadable" in record.message
                   for record in caplog.records)

    def test_missing_file_with_resume_is_fresh_start(self, tmp_path):
        path = tmp_path / "nope.json"
        run = SweepRunner(
            checkpoint=SweepCheckpoint(path, resume=True)).run(_tasks())
        assert run.summary["resumed_tasks"] == 0
        assert path.exists()  # written by the end of the run

    def test_flush_before_load_rejected(self, tmp_path):
        checkpoint = SweepCheckpoint(tmp_path / "cp.json")
        with pytest.raises(RuntimeError):
            checkpoint.flush()


class TestPoisonedResume:
    def test_poisoned_status_survives_resume(self, tmp_path):
        task = SweepTask(
            experiment=KILLER,
            params={"counter_path": str(tmp_path / "kc"),
                    "kill_times": 99},
            index=0, seed=0, key="killer[0]",
        )
        path = tmp_path / "cp.json"
        first = SweepRunner(workers=2, poison_after=2,
                            checkpoint=SweepCheckpoint(path)).run([task])
        assert first.outcomes[0].status == "poisoned"
        resumed = SweepRunner(
            workers=2,
            checkpoint=SweepCheckpoint(path, resume=True)).run([task])
        # The quarantine verdict is replayed, not re-litigated (no
        # worker is sacrificed again).
        assert resumed.outcomes[0].status == "poisoned"
        assert resumed.outcomes[0].value is None
        assert resumed.summary["crashes"] == []
