"""Unit tests for the error relay (behaviour and cost)."""

import pytest

from repro.core.relay import ErrorRelay, relay_cost
from repro.errors import ConfigurationError
from repro.sequential.timber_ff import TimberFlipFlop
from repro.sim.clocks import ClockGenerator
from repro.sim.engine import Simulator
from repro.timing.graph import TimingGraph

PERIOD = 1000
INTERVAL = 100


def make_pair():
    sim = Simulator()
    ClockGenerator(sim, "clk", PERIOD)
    sim.set_initial("d1", 0)
    sim.set_initial("d2", 0)
    f1 = TimberFlipFlop(sim, name="f1", d="d1", clk="clk", q="q1",
                        err="e1", interval_ps=INTERVAL)
    f2 = TimberFlipFlop(sim, name="f2", d="d2", clk="clk", q="q2",
                        err="e2", interval_ps=INTERVAL)
    relay = ErrorRelay(sim, "clk", {f2: [f1]}, relay_delay_ps=100)
    return sim, f1, f2, relay


class TestBehaviour:
    def test_relay_propagates_select_after_error(self):
        sim, f1, f2, relay = make_pair()
        sim.drive("d1", 1, PERIOD + 60)  # error at f1 in cycle 1
        sim.run(2 * PERIOD - 10)         # relay applied after fall at 1.5T
        assert f2.select_in == 1

    def test_relay_resets_select_after_clean_cycle(self):
        sim, f1, f2, relay = make_pair()
        sim.drive("d1", 1, PERIOD + 60)
        sim.run(3 * PERIOD - 10)  # cycle 2 was clean at f1
        assert f2.select_in == 0

    def test_two_stage_error_masked_and_flagged(self):
        sim, f1, f2, relay = make_pair()
        sim.drive("d1", 1, PERIOD + 60)
        # f2's data arrives late by f1's borrowed interval + its own 60.
        sim.drive("d2", 1, 2 * PERIOD + INTERVAL + 60)
        sim.run(3 * PERIOD)
        assert f1.flagged_count == 0
        assert f2.flagged_count == 1
        assert f2.events[0].borrowed_intervals == 2

    def test_applied_log(self):
        sim, f1, f2, relay = make_pair()
        sim.drive("d1", 1, PERIOD + 60)
        sim.run(2 * PERIOD)
        applied = [entry for entry in relay.applied if entry[2] == 1]
        assert applied and applied[0][1] == "f2"

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            ErrorRelay(sim, "clk", {}, relay_delay_ps=-1)


@pytest.fixture
def graph():
    g = TimingGraph("t", 1000)
    for name in ("a", "b", "c", "d", "e"):
        g.add_ff(name)
    g.add_edge("a", "b", 950)
    g.add_edge("b", "c", 930)
    g.add_edge("b", "d", 910)
    g.add_edge("e", "c", 920)
    g.add_edge("c", "e", 905)
    return g


class TestCost:
    def test_counts(self, graph):
        cost = relay_cost(graph, 10)
        # Endpoints: b, c, d, e; through FFs: b (ends a->b, starts b->c),
        # c (ends, starts c->e), e (ends c->e, starts e->c).
        assert cost.num_protected_ffs == 4
        assert cost.num_through_ffs == 3

    def test_relayed_inputs_counted_from_through_ffs_only(self, graph):
        cost = relay_cost(graph, 10)
        # c receives critical paths from b and e (both through): 2 inputs.
        # d receives from b: 1.  e receives from c: 1.  b from a: 0 (a is
        # not a through FF).
        assert cost.num_relayed_inputs == 4
        assert cost.worst_fanin == 2

    def test_max_tree_nodes(self, graph):
        cost = relay_cost(graph, 10)
        # Only c has fanin > 1 -> one 2-input max node.
        assert cost.num_max_nodes == 1

    def test_delay_model(self, graph):
        cost = relay_cost(graph, 10)
        # Worst fanin 2 -> depth 1 level.
        assert cost.worst_depth_levels == 1
        assert cost.worst_delay_ps > 0

    def test_timing_slack(self, graph):
        cost = relay_cost(graph, 10)
        slack = cost.timing_slack_percent(1000)
        assert 0 < slack < 100
        assert cost.meets_budget(1000)

    def test_area_positive_and_composed(self, graph):
        cost = relay_cost(graph, 10)
        assert cost.area > 0
        assert cost.leakage > 0

    def test_no_critical_paths_no_cost(self):
        g = TimingGraph("cold", 1000)
        g.add_ff("x")
        g.add_ff("y")
        g.add_edge("x", "y", 100)
        cost = relay_cost(g, 10)
        assert cost.num_protected_ffs == 0
        assert cost.area == 0
        assert cost.worst_delay_ps == 0
