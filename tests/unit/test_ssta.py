"""Unit tests for Monte-Carlo statistical timing analysis."""

import pytest

from repro.circuit.generate import inverter_chain, random_stage
from repro.errors import AnalysisError
from repro.timing.ssta import run_ssta
from repro.variability import ConstantVariation, LocalVariation


class TestBasics:
    def test_no_variability_no_violations_with_slack(self):
        chain = inverter_chain(4)
        result = run_ssta(chain, period_ps=10_000,
                          variability=ConstantVariation(1.0), trials=10)
        stats = result.endpoints[chain.capture_nets[0]]
        assert stats.violations == 0
        assert result.any_violation_probability == 0.0

    def test_constant_overdelay_always_violates(self):
        chain = inverter_chain(10)
        # 10 INV * 12 ps = 120 ps + 45 clk->q; period 160, setup 30:
        # deadline 130 < 165 -> violation every trial.
        result = run_ssta(chain, period_ps=160,
                          variability=ConstantVariation(1.0), trials=20)
        stats = result.endpoints[chain.capture_nets[0]]
        assert stats.violations == 20
        assert stats.violation_probability == 1.0
        assert stats.max_lateness_ps > 0
        assert result.any_violation_probability == 1.0

    def test_lateness_accounting(self):
        chain = inverter_chain(10)
        result = run_ssta(chain, period_ps=160,
                          variability=ConstantVariation(1.0), trials=5)
        stats = result.endpoints[chain.capture_nets[0]]
        assert stats.mean_lateness_ps == pytest.approx(
            stats.max_lateness_ps)  # constant factor: identical trials

    def test_validation(self):
        chain = inverter_chain(2)
        with pytest.raises(AnalysisError):
            run_ssta(chain, period_ps=1000,
                     variability=ConstantVariation(1.0), trials=0)
        with pytest.raises(AnalysisError):
            run_ssta(chain, period_ps=0,
                     variability=ConstantVariation(1.0))


class TestStatistics:
    @pytest.fixture(scope="class")
    def marginal_result(self):
        """A chain whose nominal arrival sits just below the deadline,
        so Gaussian jitter violates roughly half the trials."""
        chain = inverter_chain(20)  # 240 ps + 45 = 285 nominal
        return run_ssta(
            chain, period_ps=315,  # deadline 285 == nominal arrival
            variability=LocalVariation(sigma=0.05, seed=5),
            trials=400,
        )

    def test_violation_probability_near_half(self, marginal_result):
        stats = next(iter(marginal_result.endpoints.values()))
        assert 0.25 < stats.violation_probability < 0.75

    def test_any_violation_at_least_per_endpoint(self, marginal_result):
        stats = next(iter(marginal_result.endpoints.values()))
        assert marginal_result.any_violation_probability >= \
            stats.violation_probability

    def test_required_margin_covers_worst(self, marginal_result):
        margin = marginal_result.required_margin_ps(coverage=1.0)
        worst = marginal_result.worst_endpoint()
        assert margin == worst.max_lateness_ps

    def test_required_margin_validation(self, marginal_result):
        with pytest.raises(AnalysisError):
            marginal_result.required_margin_ps(coverage=0.0)


class TestMultiEndpoint:
    def test_per_endpoint_statistics_distinct(self):
        stage = random_stage(num_inputs=6, num_outputs=4, depth=6,
                             width=8, seed=21)
        result = run_ssta(
            stage, period_ps=230,
            variability=LocalVariation(sigma=0.04, seed=9), trials=200)
        assert len(result.endpoints) == 4
        probabilities = {
            stats.violation_probability
            for stats in result.endpoints.values()
        }
        assert len(probabilities) >= 2  # different cones, different risk

    def test_worst_endpoint_is_max(self):
        stage = random_stage(num_inputs=6, num_outputs=4, depth=6,
                             width=8, seed=21)
        result = run_ssta(
            stage, period_ps=230,
            variability=LocalVariation(sigma=0.04, seed=9), trials=100)
        worst = result.worst_endpoint()
        assert all(
            worst.violation_probability >= s.violation_probability
            for s in result.endpoints.values()
        )
