"""Unit tests for level-sensitive and pulse-gated latches."""

import pytest

from repro.circuit.logic import Logic
from repro.errors import ConfigurationError
from repro.sequential.latch import DLatch, PulseGatedLatch
from repro.sim.clocks import ClockGenerator
from repro.sim.engine import Simulator

PERIOD = 1000


class TestDLatch:
    @pytest.fixture
    def latch_sim(self):
        sim = Simulator()
        ClockGenerator(sim, "clk", PERIOD)
        sim.set_initial("d", 0)
        latch = DLatch(sim, name="lat", d="d", clk="clk", q="q",
                       d_to_q_ps=5)
        return sim, latch

    def test_transparent_while_high(self, latch_sim):
        sim, latch = latch_sim
        sim.drive("d", 1, 200)  # clk is high in [0, 500)
        sim.run(300)
        assert sim.value("q") is Logic.ONE
        assert latch.transparent

    def test_holds_while_low(self, latch_sim):
        sim, latch = latch_sim
        sim.drive("d", 1, 200)
        sim.drive("d", 0, 600)  # clk low: change must not pass
        sim.run(900)
        assert sim.value("q") is Logic.ONE
        assert latch.value() is Logic.ONE

    def test_reopens_next_phase(self, latch_sim):
        sim, latch = latch_sim
        sim.drive("d", 1, 600)   # while opaque
        sim.run(PERIOD + 100)    # next high phase republishes D
        assert sim.value("q") is Logic.ONE

    def test_transparent_low_variant(self):
        sim = Simulator()
        ClockGenerator(sim, "clk", PERIOD)
        sim.set_initial("d", 0)
        DLatch(sim, name="lat", d="d", clk="clk", q="q",
               transparent_level=Logic.ZERO, d_to_q_ps=5)
        sim.drive("d", 1, 700)   # clk low in [500, 1000): transparent
        sim.run(800)
        assert sim.value("q") is Logic.ONE

    def test_rejects_x_transparent_level(self, sim):
        with pytest.raises(ConfigurationError):
            DLatch(sim, name="lat", d="d", clk="clk", q="q",
                   transparent_level=Logic.X)

    def test_close_applies_setup_aperture(self, latch_sim):
        sim, latch = latch_sim
        # Change 5 ps before the closing edge at 500 (setup is 20 ps).
        sim.drive("d", 1, 495)
        sim.run(600)
        assert latch.held_value is Logic.X


class TestPulseGatedLatch:
    def test_window_transparency(self, sim):
        sim.set_initial("d", 0)
        latch = PulseGatedLatch(sim, name="pg", d="d", q="q", d_to_q_ps=5)
        latch.open_window(100, 300)
        sim.drive("d", 1, 200)
        sim.run(250)
        assert sim.value("q") is Logic.ONE

    def test_closed_outside_window(self, sim):
        sim.set_initial("d", 0)
        latch = PulseGatedLatch(sim, name="pg", d="d", q="q", d_to_q_ps=5)
        latch.open_window(100, 300)
        sim.run(350)
        sim.drive("d", 1, 400)
        sim.run(500)
        assert sim.value("q") is Logic.ZERO

    def test_value_held_after_close(self, sim):
        sim.set_initial("d", 0)
        latch = PulseGatedLatch(sim, name="pg", d="d", q="q", d_to_q_ps=5)
        latch.open_window(100, 300)
        sim.drive("d", 1, 250)
        sim.drive("d", 0, 600)
        sim.run(700)
        assert latch.value() is Logic.ONE

    def test_empty_window_rejected(self, sim):
        latch = PulseGatedLatch(sim, name="pg", d="d", q="q")
        with pytest.raises(ConfigurationError):
            latch.open_window(100, 100)
