"""Unit tests for the central error controller."""

import pytest

from repro.core.checking_period import CheckingPeriod
from repro.errors import ConfigurationError
from repro.pipeline.controller import CentralErrorController

PERIOD = 1000


def make(latency=1200, factor=1.25, cycles=10):
    return CentralErrorController(
        period_ps=PERIOD, consolidation_latency_ps=latency,
        slowdown_factor=factor, slowdown_cycles=cycles)


class TestBudget:
    def test_latency_within_paper_budget(self):
        cp = CheckingPeriod.with_tb(PERIOD, 30)
        assert make(latency=1400).latency_fits(cp)
        assert not make(latency=1600).latency_fits(cp)

    def test_reaction_delay(self):
        # 0.5 cycles (falling-edge latch) + 1.2 cycles OR-tree -> 2.
        assert make(latency=1200).reaction_delay_cycles == 2
        assert make(latency=100).reaction_delay_cycles == 1


class TestSlowdown:
    def test_no_flag_no_slowdown(self):
        controller = make()
        assert controller.period_factor(5) == 1.0
        assert controller.period_at(5) == PERIOD

    def test_flag_triggers_window(self):
        controller = make(latency=1200, cycles=10)
        controller.notify_flag(100)
        start = 100 + controller.reaction_delay_cycles
        assert controller.period_factor(start - 1) == 1.0
        assert controller.period_factor(start) == 1.25
        assert controller.period_factor(start + 9) == 1.25
        assert controller.period_factor(start + 10) == 1.0

    def test_period_at_scales(self):
        controller = make(factor=1.5)
        controller.notify_flag(0)
        start = controller.reaction_delay_cycles
        assert controller.period_at(start) == 1500

    def test_overlapping_flags_extend_window(self):
        controller = make(cycles=10)
        controller.notify_flag(100)
        controller.notify_flag(105)
        assert len(controller.windows) == 1
        start = 100 + controller.reaction_delay_cycles
        end = 105 + controller.reaction_delay_cycles + 10
        assert controller.windows[0].start_cycle == start
        assert controller.windows[0].end_cycle == end

    def test_disjoint_flags_separate_windows(self):
        controller = make(cycles=5)
        controller.notify_flag(100)
        controller.notify_flag(500)
        assert len(controller.windows) == 2
        assert controller.period_factor(300) == 1.0

    def test_flag_counter_and_slow_total(self):
        controller = make(cycles=5)
        controller.notify_flag(100)
        controller.notify_flag(500)
        assert controller.flags_received == 2
        assert controller.slow_cycles_total == 10


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            CentralErrorController(period_ps=0,
                                   consolidation_latency_ps=100)
        with pytest.raises(ConfigurationError):
            make(factor=0.5)
        with pytest.raises(ConfigurationError):
            make(cycles=0)
        with pytest.raises(ConfigurationError):
            make(latency=-1)
