"""Unit tests for the synthetic processor generator."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.processor.generator import (
    calibrate_base,
    generate_processor,
    generate_processor_detailed,
    measured_endpoint_fractions,
)
from repro.processor.perfpoints import (
    HIGH_PERFORMANCE,
    LOW_PERFORMANCE,
    MEDIUM_PERFORMANCE,
    PERFORMANCE_POINTS,
    PerformancePoint,
)


class TestPerfPointValidation:
    def test_fractions_must_be_monotone(self):
        with pytest.raises(ConfigurationError):
            PerformancePoint(name="bad", period_ps=1000,
                             endpoint_fractions=(0.5, 0.4, 0.6, 0.7))

    def test_fractions_must_be_probabilities(self):
        with pytest.raises(ConfigurationError):
            PerformancePoint(name="bad", period_ps=1000,
                             endpoint_fractions=(0.1, 0.2, 0.3, 1.2))

    def test_rejects_bad_gap_range(self):
        with pytest.raises(ConfigurationError):
            PerformancePoint(name="bad", period_ps=1000,
                             endpoint_fractions=(0.1, 0.2, 0.3, 0.4),
                             gap_range=(0.5, 0.2))

    def test_points_are_ordered_by_speed(self):
        assert LOW_PERFORMANCE.period_ps > MEDIUM_PERFORMANCE.period_ps
        assert MEDIUM_PERFORMANCE.period_ps > HIGH_PERFORMANCE.period_ps


class TestGeneration:
    def test_structure(self):
        graph = generate_processor(MEDIUM_PERFORMANCE, num_stages=4,
                                   ffs_per_stage=50, fanin=4, seed=1)
        assert graph.num_ffs == 200
        assert graph.num_edges == 200 * 4

    def test_deterministic(self):
        a = generate_processor(MEDIUM_PERFORMANCE, num_stages=3,
                               ffs_per_stage=30, seed=7)
        b = generate_processor(MEDIUM_PERFORMANCE, num_stages=3,
                               ffs_per_stage=30, seed=7)
        assert sorted((e.src, e.dst, e.delay_ps) for e in a.edges()) == \
            sorted((e.src, e.dst, e.delay_ps) for e in b.edges())

    def test_seed_changes_graph(self):
        a = generate_processor(MEDIUM_PERFORMANCE, num_stages=3,
                               ffs_per_stage=30, seed=7)
        b = generate_processor(MEDIUM_PERFORMANCE, num_stages=3,
                               ffs_per_stage=30, seed=8)
        assert sorted((e.src, e.dst, e.delay_ps) for e in a.edges()) != \
            sorted((e.src, e.dst, e.delay_ps) for e in b.edges())

    def test_all_delays_meet_signoff(self, medium_graph):
        assert all(e.delay_ps <= medium_graph.period_ps
                   for e in medium_graph.edges())

    def test_circular_stage_structure(self):
        graph = generate_processor(MEDIUM_PERFORMANCE, num_stages=3,
                                   ffs_per_stage=20, seed=3)
        for edge in graph.edges():
            src_stage = graph.stage_of(edge.src)
            dst_stage = graph.stage_of(edge.dst)
            assert dst_stage == (src_stage + 1) % 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            generate_processor(MEDIUM_PERFORMANCE, num_stages=1)
        with pytest.raises(ConfigurationError):
            generate_processor(MEDIUM_PERFORMANCE, ffs_per_stage=3,
                               fanin=6)


class TestCalibration:
    @pytest.mark.parametrize("point", PERFORMANCE_POINTS,
                             ids=lambda p: p.name)
    def test_endpoint_fractions_match_targets(self, point):
        graph = generate_processor(point)
        measured = measured_endpoint_fractions(graph)
        for percent, target in zip((10.0, 20.0, 30.0, 40.0),
                                   point.endpoint_fractions):
            assert measured[percent] == pytest.approx(target, abs=0.03)

    def test_medium_matches_paper_quote(self, medium_graph):
        """Paper Sec. 3: ~50% of FFs terminate top-20% paths and ~70% of
        those start none (only single-stage susceptible)."""
        endpoints = medium_graph.critical_endpoints(20.0)
        through = medium_graph.critical_through_ffs(20.0)
        end_fraction = len(endpoints) / medium_graph.num_ffs
        single_stage_only = 1.0 - len(through) / len(endpoints)
        assert end_fraction == pytest.approx(0.50, abs=0.05)
        assert single_stage_only == pytest.approx(0.70, abs=0.10)

    def test_through_ffs_are_minority_of_endpoints(self):
        for point in PERFORMANCE_POINTS:
            graph = generate_processor(point)
            endpoints = graph.critical_endpoints(20.0)
            through = graph.critical_through_ffs(20.0)
            assert len(through) < 0.5 * len(endpoints)

    def test_calibrate_base_adjusts_anchor(self):
        recal = calibrate_base(MEDIUM_PERFORMANCE,
                               target_end_fraction=0.30,
                               percent_threshold=20.0)
        assert recal.endpoint_fractions[1] == pytest.approx(0.30)
        graph = generate_processor(recal)
        measured = measured_endpoint_fractions(graph)
        assert measured[20.0] == pytest.approx(0.30, abs=0.03)

    def test_calibrate_keeps_monotonicity(self):
        recal = calibrate_base(MEDIUM_PERFORMANCE,
                               target_end_fraction=0.05,
                               percent_threshold=20.0)
        fractions = recal.endpoint_fractions
        assert list(fractions) == sorted(fractions)

    def test_calibrate_validation(self):
        with pytest.raises(ConfigurationError):
            calibrate_base(MEDIUM_PERFORMANCE, target_end_fraction=1.5)
        with pytest.raises(ConfigurationError):
            calibrate_base(MEDIUM_PERFORMANCE, target_end_fraction=0.3,
                           percent_threshold=15.0)


class TestDetailedOutput:
    def test_latents_exposed(self):
        detailed = generate_processor_detailed(
            MEDIUM_PERFORMANCE, num_stages=3, ffs_per_stage=20, seed=5)
        assert set(detailed.cone_delay_frac) == set(detailed.graph.ffs)
        assert all(0 < v <= 1 for v in detailed.cone_delay_frac.values())
        assert all(0 <= v <= 1 for v in detailed.start_latent.values())

    def test_worst_in_edge_matches_cone(self):
        detailed = generate_processor_detailed(
            MEDIUM_PERFORMANCE, num_stages=3, ffs_per_stage=20, seed=5)
        graph = detailed.graph
        point = MEDIUM_PERFORMANCE
        for ff in graph.ffs:
            expected = int(round(
                detailed.cone_delay_frac[ff] * point.period_ps))
            assert graph.max_in_delay(ff) == min(expected, point.period_ps)
