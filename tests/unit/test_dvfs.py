"""Unit tests for the adaptive voltage scaler."""

import pytest

from repro.core.checking_period import CheckingPeriod
from repro.errors import ConfigurationError
from repro.pipeline.dvfs import AdaptiveVoltageScaler
from repro.pipeline.pipeline import PipelineSimulation
from repro.pipeline.schemes import TimberLatchPolicy
from repro.pipeline.stage import PipelineStage
from repro.variability import CompositeVariation, ConstantVariation

PERIOD = 1000


def make_scaler(**kwargs):
    defaults = dict(period_ps=PERIOD, window_cycles=10, vdd_step=0.02,
                    flag_budget=1)
    defaults.update(kwargs)
    return AdaptiveVoltageScaler(**defaults)


class TestControlLaw:
    def test_quiet_windows_scale_down(self):
        scaler = make_scaler()
        scaler.period_at(100)  # advance 10 quiet windows
        assert scaler.settled_vdd < scaler.model.nominal_vdd
        assert len(scaler.trajectory) > 1

    def test_flags_push_voltage_back_up(self):
        scaler = make_scaler()
        scaler.period_at(50)  # five quiet windows: vdd dropped
        lowered = scaler.settled_vdd
        for cycle in range(50, 60):
            scaler.notify_flag(cycle)  # noisy window
        scaler.period_at(70)
        assert scaler.settled_vdd > lowered

    def test_within_budget_holds(self):
        scaler = make_scaler(flag_budget=3)
        scaler.period_at(50)
        held = scaler.settled_vdd
        scaler.notify_flag(52)  # one flag: inside the budget
        scaler.period_at(60)
        assert scaler.settled_vdd == pytest.approx(held)

    def test_vdd_bounded(self):
        scaler = make_scaler(vdd_step=0.2)
        scaler.period_at(1000)
        assert scaler.settled_vdd >= scaler.model.min_vdd

    def test_frequency_never_changes(self):
        scaler = make_scaler()
        assert scaler.period_at(0) == PERIOD
        assert scaler.period_at(500) == PERIOD

    def test_delay_factor_tracks_vdd(self):
        scaler = make_scaler()
        nominal = scaler.factor(0, "p")
        scaler.period_at(200)
        lowered = scaler.factor(200, "p")
        assert lowered > nominal >= 1.0 - 1e-9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_scaler(window_cycles=0)
        with pytest.raises(ConfigurationError):
            make_scaler(vdd_step=0)


class TestFiguresOfMerit:
    def test_savings_positive_after_quiet_run(self):
        scaler = make_scaler()
        scaler.period_at(500)
        assert scaler.energy_savings_percent() > 0
        assert scaler.mean_power_factor() < 1.0


class TestClosedLoopWithTimber:
    def test_voltage_settles_at_the_masking_edge(self):
        """The full loop: the scaler under-volts until the TIMBER latch
        starts flagging ED borrows, then holds near the edge with zero
        silent failures."""
        cp = CheckingPeriod.with_tb(PERIOD, 30)
        stages = [
            PipelineStage(name=f"dv{i}", critical_delay_ps=900,
                          typical_delay_ps=800,
                          sensitization_prob=0.5, seed=140 + i)
            for i in range(4)
        ]
        # Zero flag budget: any flagged window immediately backs off —
        # the conservative law a deployment would run, since TB borrows
        # are invisible and only ED borrows warn of approaching the
        # cliff.
        scaler = AdaptiveVoltageScaler(
            period_ps=PERIOD, window_cycles=64, vdd_step=0.01,
            flag_budget=0)
        sim = PipelineSimulation(
            stages, TimberLatchPolicy(4, cp), period_ps=PERIOD,
            controller=scaler,
            variability=CompositeVariation(
                [ConstantVariation(1.0), scaler]),
        )
        result = sim.run(6000)
        assert result.failed == 0
        assert scaler.flags_received > 0       # found the edge
        assert scaler.settled_vdd < scaler.model.nominal_vdd
        assert scaler.energy_savings_percent() > 3.0
