"""Unit tests for waveform capture."""

import pytest

from repro.circuit.logic import Logic
from repro.sim.clocks import ClockGenerator
from repro.sim.engine import Simulator
from repro.sim.waveform import Waveform, WaveformRecorder


class TestWaveform:
    def test_value_at_before_any_change(self):
        wave = Waveform("s", initial=Logic.ZERO)
        assert wave.value_at(100) is Logic.ZERO

    def test_value_at_change_points(self):
        wave = Waveform("s", initial=Logic.ZERO)
        wave.record(10, Logic.ONE)
        wave.record(20, Logic.ZERO)
        assert wave.value_at(9) is Logic.ZERO
        assert wave.value_at(10) is Logic.ONE
        assert wave.value_at(15) is Logic.ONE
        assert wave.value_at(20) is Logic.ZERO

    def test_monotonic_time_enforced(self):
        wave = Waveform("s")
        wave.record(10, Logic.ONE)
        with pytest.raises(ValueError):
            wave.record(5, Logic.ZERO)

    def test_same_instant_overwrites(self):
        wave = Waveform("s", initial=Logic.ZERO)
        wave.record(10, Logic.ONE)
        wave.record(10, Logic.ZERO)
        assert wave.value_at(10) is Logic.ZERO
        assert len(wave.changes()) == 1

    def test_edges_skip_redundant_writes(self):
        wave = Waveform("s", initial=Logic.ZERO)
        wave.record(10, Logic.ONE)
        wave.record(20, Logic.ONE)   # redundant
        wave.record(30, Logic.ZERO)
        edges = wave.edges()
        assert [(e.time_ps, e.new) for e in edges] == [
            (10, Logic.ONE), (30, Logic.ZERO)]

    def test_rising_falling_classification(self):
        wave = Waveform("s", initial=Logic.ZERO)
        wave.record(10, Logic.ONE)
        wave.record(30, Logic.ZERO)
        assert wave.rising_edges() == [10]
        assert wave.falling_edges() == [30]

    def test_x_transitions_are_neither_rising_nor_falling(self):
        wave = Waveform("s", initial=Logic.X)
        wave.record(10, Logic.ONE)
        assert wave.rising_edges() == []
        assert wave.edges()[0].new is Logic.ONE

    def test_final_value(self):
        wave = Waveform("s", initial=Logic.ZERO)
        assert wave.final_value() is Logic.ZERO
        wave.record(5, Logic.ONE)
        assert wave.final_value() is Logic.ONE

    def test_time_of_last_change_before(self):
        wave = Waveform("s", initial=Logic.ZERO)
        wave.record(10, Logic.ONE)
        wave.record(30, Logic.ZERO)
        assert wave.time_of_last_change_before(20) == 10
        assert wave.time_of_last_change_before(5) is None


class TestRecorder:
    def test_records_clock(self, sim):
        ClockGenerator(sim, "clk", 100)
        recorder = WaveformRecorder(["clk"])
        recorder.attach(sim)
        sim.run(250)
        assert recorder["clk"].rising_edges() == [0, 100, 200]

    def test_initial_value_seeded_at_attach(self, sim):
        sim.set_initial("a", 1)
        recorder = WaveformRecorder(["a"])
        recorder.attach(sim)
        assert recorder["a"].value_at(0) is Logic.ONE

    def test_render_ascii_shape(self, sim):
        ClockGenerator(sim, "clk", 100)
        sim.set_initial("d", 0)
        recorder = WaveformRecorder(["clk", "d"])
        recorder.attach(sim)
        sim.run(400)
        art = recorder.render_ascii(end_ps=400, step_ps=25,
                                    order=["clk", "d"])
        lines = art.splitlines()
        assert len(lines) == 3  # header + 2 signals
        assert lines[1].startswith("clk")
        assert "#" in lines[1] and "_" in lines[1]
        assert set(lines[2].split()[-1]) == {"_"}
