"""Unit tests for critical-path distribution statistics (Fig. 1)."""

import pytest

from repro.timing.distribution import (
    critical_path_distribution,
    distribution_sweep,
)
from repro.timing.graph import TimingGraph


@pytest.fixture
def graph():
    g = TimingGraph("t", 1000)
    for name in "abcdef":
        g.add_ff(name)
    g.add_edge("a", "b", 950)
    g.add_edge("b", "c", 930)
    g.add_edge("d", "e", 650)
    g.add_edge("e", "f", 300)
    return g


class TestDistribution:
    def test_counts_at_10_percent(self, graph):
        dist = critical_path_distribution(graph, 10)
        assert dist.num_ffs == 6
        assert dist.num_endpoints == 2    # b, c
        assert dist.num_startpoints == 2  # a, b
        assert dist.num_through == 1      # b

    def test_percentages(self, graph):
        dist = critical_path_distribution(graph, 10)
        assert dist.pct_ffs_ending == pytest.approx(100 * 2 / 6)
        assert dist.pct_ffs_through == pytest.approx(100 * 1 / 6)
        assert dist.pct_endpoints_through == pytest.approx(50.0)
        assert dist.pct_endpoints_single_stage_only == pytest.approx(50.0)

    def test_counts_at_40_percent(self, graph):
        dist = critical_path_distribution(graph, 40)
        # Threshold 600: a->b, b->c, d->e qualify.
        assert dist.num_endpoints == 3
        assert dist.num_through == 1

    def test_empty_threshold(self, graph):
        tight = TimingGraph("tight", 1000)
        tight.add_ff("x")
        tight.add_ff("y")
        tight.add_edge("x", "y", 100)
        dist = critical_path_distribution(tight, 10)
        assert dist.num_endpoints == 0
        assert dist.pct_endpoints_through == 0.0


class TestSweep:
    def test_sweep_thresholds(self, graph):
        sweep = distribution_sweep(graph)
        assert [d.percent_threshold for d in sweep] == [10, 20, 30, 40]

    def test_sweep_monotone_endpoints(self, graph):
        sweep = distribution_sweep(graph)
        endpoints = [d.num_endpoints for d in sweep]
        assert endpoints == sorted(endpoints)
