"""Unit tests for the shared experiment runners."""

import pytest

from repro.analysis.experiments import (
    CHECKING_PERCENTS,
    fig1_experiment,
    fig8_experiment,
    resilience_sweep,
    throughput_sweep,
    two_stage_waveform_experiment,
)
from repro.errors import ConfigurationError
from repro.processor.perfpoints import MEDIUM_PERFORMANCE


class TestFig1:
    def test_structure(self):
        results = fig1_experiment(points=(MEDIUM_PERFORMANCE,))
        assert set(results) == {"medium"}
        sweep = results["medium"]
        assert [d.percent_threshold for d in sweep] == [10, 20, 30, 40]

    def test_endpoint_monotonicity(self):
        results = fig1_experiment(points=(MEDIUM_PERFORMANCE,))
        pct = [d.pct_ffs_ending for d in results["medium"]]
        assert pct == sorted(pct)


class TestFig8:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig8_experiment(points=(MEDIUM_PERFORMANCE,))

    def test_full_grid(self, rows):
        # 1 point x 4 checking periods x 2 styles x 2 TB settings.
        assert len(rows) == len(CHECKING_PERCENTS) * 4

    def test_margin_split(self, rows):
        for row in rows:
            divisor = 3 if row.with_tb_interval else 2
            assert row.margin_percent == pytest.approx(
                row.checking_percent / divisor)

    def test_latch_has_no_relay_overhead(self, rows):
        for row in rows:
            if row.style == "latch":
                assert row.relay_area_overhead_percent == 0.0

    def test_power_monotone_in_checking_period(self, rows):
        for style in ("ff", "latch"):
            series = [r.power_overhead_percent for r in rows
                      if r.style == style and r.with_tb_interval]
            assert series == sorted(series)


class TestWaveforms:
    @pytest.mark.parametrize("style", ["ff", "latch"])
    def test_two_stage_scenario(self, style):
        result = two_stage_waveform_experiment(style)
        assert not result.stage1_flagged   # TB interval: silent
        assert result.stage2_flagged       # ED interval: flagged
        assert result.q1_final == "1"
        assert result.q2_final == "1"      # both errors masked

    def test_style_validated(self):
        with pytest.raises(ConfigurationError):
            two_stage_waveform_experiment("bogus")


class TestSweeps:
    def test_resilience_sweep_shape(self):
        points = resilience_sweep(
            techniques=("plain", "timber-ff"),
            droop_amplitudes=(0.0, 0.08),
            num_cycles=2000,
        )
        assert len(points) == 4
        keys = {(p.technique, p.droop_amplitude) for p in points}
        assert ("timber-ff", 0.08) in keys

    def test_timber_beats_plain_under_droop(self):
        points = resilience_sweep(
            techniques=("plain", "timber-ff"),
            droop_amplitudes=(0.10,),
            num_cycles=5000,
        )
        by_technique = {p.technique: p.result for p in points}
        assert by_technique["plain"].failed > 0
        assert by_technique["timber-ff"].failed == 0

    def test_throughput_sweep_shape(self):
        points = throughput_sweep(
            techniques=("timber-ff", "canary"),
            overclock_percents=(0.0, 8.0),
            num_cycles=2000,
        )
        assert len(points) == 4
        for point in points:
            assert 0 < point.effective_speedup < 2.0
