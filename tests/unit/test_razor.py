"""Unit tests for the Razor flip-flop baseline."""

import pytest

from repro.circuit.logic import Logic
from repro.errors import ConfigurationError
from repro.sequential.razor import RazorFlipFlop
from repro.sim.clocks import ClockGenerator
from repro.sim.engine import Simulator

PERIOD = 1000
WINDOW = 200


@pytest.fixture
def rsim():
    sim = Simulator()
    ClockGenerator(sim, "clk", PERIOD)
    sim.set_initial("d", 0)
    ff = RazorFlipFlop(sim, name="r", d="d", clk="clk", q="q", err="err",
                       window_ps=WINDOW)
    return sim, ff


class TestCleanOperation:
    def test_on_time_no_detection(self, rsim):
        sim, ff = rsim
        sim.drive("d", 1, 500)
        sim.run(2 * PERIOD)
        assert sim.value("q") is Logic.ONE
        assert ff.detection_count == 0
        assert sim.value("err") is Logic.ZERO


class TestDetection:
    def test_late_arrival_detected(self, rsim):
        sim, ff = rsim
        sim.drive("d", 1, PERIOD + 100)  # inside shadow window
        sim.run(2 * PERIOD)
        assert ff.detection_count == 1
        detection = ff.detections[0]
        assert detection.main_value is Logic.ZERO
        assert detection.shadow_value is Logic.ONE

    def test_error_raised_at_detection_not_falling_edge(self, rsim):
        sim, ff = rsim
        sim.drive("d", 1, PERIOD + 100)
        sim.run(PERIOD + WINDOW)
        # Unlike TIMBER, Razor's error is visible immediately at the
        # shadow comparison (no falling-edge deferral).
        assert sim.value("err") is Logic.ONE

    def test_q_restored_from_shadow(self, rsim):
        sim, ff = rsim
        sim.drive("d", 1, PERIOD + 100)
        sim.run(2 * PERIOD)
        assert sim.value("q") is Logic.ONE

    def test_state_was_corrupt_before_restore(self, rsim):
        sim, ff = rsim
        sim.drive("d", 1, PERIOD + 100)
        # Before the shadow sample, downstream saw the stale value: that
        # is why Razor needs replay and TIMBER does not.
        sim.run(PERIOD + 90)
        assert sim.value("q") is Logic.ZERO

    def test_arrival_beyond_window_missed(self, rsim):
        sim, ff = rsim
        sim.drive("d", 1, PERIOD + WINDOW + 50)
        sim.run(2 * PERIOD)
        assert ff.detection_count == 0  # silent corruption

    def test_clear_error(self, rsim):
        sim, ff = rsim
        sim.drive("d", 1, PERIOD + 100)
        sim.run(2 * PERIOD)
        ff.clear_error()
        sim.run(2 * PERIOD + 10)
        assert sim.value("err") is Logic.ZERO


class TestValidation:
    def test_rejects_zero_window(self, sim):
        with pytest.raises(ConfigurationError):
            RazorFlipFlop(sim, name="r", d="d", clk="clk", q="q",
                          err="e", window_ps=0)
