"""Unit tests for combinational evaluation and equivalence checking."""

import pytest

from repro.circuit.cells import default_library
from repro.circuit.evaluate import (
    check_equivalence,
    evaluate,
    random_vectors,
)
from repro.circuit.generate import inverter_chain, random_stage
from repro.circuit.logic import Logic
from repro.circuit.netlist import Netlist
from repro.errors import ConfigurationError
from repro.timing.constraints import apply_hold_padding, hold_padding_plan


class TestEvaluate:
    def test_inverter_chain(self):
        chain = inverter_chain(3)
        values = evaluate(chain, {"in": 1})
        assert values[chain.capture_nets[0]] is Logic.ZERO

    def test_missing_inputs_default_to_x(self):
        chain = inverter_chain(2)
        values = evaluate(chain, {})
        assert values[chain.capture_nets[0]] is Logic.X

    def test_x_blocked_by_controlling_input(self):
        netlist = Netlist("t", default_library())
        netlist.add_input("a", registered=True)
        netlist.add_input("b", registered=True)
        netlist.add_gate("g", "NAND2", ["a", "b"], "y")
        netlist.add_output("y", registered=True)
        values = evaluate(netlist, {"a": 0})  # b is X
        assert values["y"] is Logic.ONE

    def test_unknown_input_rejected(self):
        chain = inverter_chain(2)
        with pytest.raises(ConfigurationError):
            evaluate(chain, {"bogus": 1})


class TestRandomVectors:
    def test_deterministic(self):
        a = random_vectors(["x", "y"], 10, seed=5)
        b = random_vectors(["x", "y"], 10, seed=5)
        assert a == b

    def test_count_validated(self):
        with pytest.raises(ConfigurationError):
            random_vectors(["x"], 0)

    def test_binary_values(self):
        for vector in random_vectors(["x", "y"], 20, seed=1):
            assert all(v in (Logic.ZERO, Logic.ONE)
                       for v in vector.values())


class TestEquivalence:
    def test_design_equivalent_to_itself(self):
        stage = random_stage(num_inputs=5, num_outputs=3, depth=4,
                             width=6, seed=9)
        ok, counterexample = check_equivalence(stage, stage, vectors=64)
        assert ok and counterexample is None

    def test_detects_functional_difference(self):
        left = inverter_chain(2)   # identity (2 inversions)
        right = inverter_chain(3, name="odd")  # inversion
        # Same input name; map outputs onto each other.
        ok, counterexample = check_equivalence(
            left, right, vectors=16,
            output_map={left.capture_nets[0]: right.capture_nets[0]})
        assert not ok
        assert counterexample is not None

    def test_input_mismatch_rejected(self):
        left = inverter_chain(2)
        stage = random_stage(num_inputs=3, num_outputs=1, depth=1,
                             width=2, seed=2)
        with pytest.raises(ConfigurationError):
            check_equivalence(left, stage)

    def test_hold_padding_preserves_function(self):
        """The flagship use: buffer insertion must not change logic."""
        reference = random_stage(num_inputs=6, num_outputs=4, depth=5,
                                 width=8, seed=33)
        padded = random_stage(num_inputs=6, num_outputs=4, depth=5,
                              width=8, seed=33)
        plan = hold_padding_plan(padded, hold_ps=15, checking_ps=400,
                                 clk_to_q_ps=0)
        renames = apply_hold_padding(padded, plan)
        assert any(old != new for old, new in renames.items())
        ok, counterexample = check_equivalence(
            reference, padded, vectors=128, output_map=renames)
        assert ok, f"padding changed function on {counterexample}"
