"""Unit tests for the energy-per-work metric."""

import pytest

from repro.analysis.metrics import energy_per_work
from repro.errors import AnalysisError
from repro.pipeline.pipeline import PipelineResult


def make_result(cycles=100, boundaries=4, failed=0, replay=0):
    captures = cycles * boundaries
    return PipelineResult(
        scheme="t", cycles=cycles, period_ps=1000,
        clean=captures - failed, failed=failed, replay_cycles=replay,
    )


class TestEnergyPerWork:
    def test_baseline_energy(self):
        result = make_result()
        energy = energy_per_work(result, element_cell="DFF")
        assert energy > 0

    def test_replay_cycles_cost_energy(self):
        clean = energy_per_work(make_result(), element_cell="RAZOR_FF")
        with_replay = energy_per_work(make_result(replay=50),
                                      element_cell="RAZOR_FF")
        assert with_replay > clean

    def test_failures_reduce_useful_work(self):
        healthy = energy_per_work(make_result(), element_cell="DFF")
        failing = energy_per_work(make_result(failed=100),
                                  element_cell="DFF")
        assert failing > healthy

    def test_expensive_elements_cost_more(self):
        dff = energy_per_work(make_result(), element_cell="DFF")
        timber = energy_per_work(make_result(),
                                 element_cell="TIMBER_FF")
        assert timber > dff

    def test_explicit_boundaries(self):
        result = make_result()
        implicit = energy_per_work(result, element_cell="DFF")
        explicit = energy_per_work(result, element_cell="DFF",
                                   num_boundaries=4)
        assert implicit == pytest.approx(explicit)

    def test_no_useful_work_rejected(self):
        result = PipelineResult(scheme="t", cycles=1, period_ps=1000,
                                failed=5, clean=0)
        # captures == failed -> useful == 0
        with pytest.raises(AnalysisError):
            energy_per_work(result, element_cell="DFF",
                            num_boundaries=5)
