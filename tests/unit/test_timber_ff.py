"""Unit tests for the behavioural TIMBER flip-flop."""

import pytest

from repro.circuit.logic import Logic
from repro.errors import ConfigurationError
from repro.sequential.timber_ff import TimberFlipFlop
from repro.sim.clocks import ClockGenerator
from repro.sim.engine import Simulator

PERIOD = 1000
INTERVAL = 100


@pytest.fixture
def tsim():
    sim = Simulator()
    ClockGenerator(sim, "clk", PERIOD)
    sim.set_initial("d", 0)
    ff = TimberFlipFlop(sim, name="f", d="d", clk="clk", q="q", err="err",
                        interval_ps=INTERVAL, num_intervals=3,
                        num_tb_intervals=1)
    return sim, ff


class TestConstruction:
    def test_rejects_zero_interval(self, sim):
        with pytest.raises(ConfigurationError):
            TimberFlipFlop(sim, name="f", d="d", clk="clk", q="q",
                           err="e", interval_ps=0)

    def test_rejects_bad_tb_count(self, sim):
        with pytest.raises(ConfigurationError):
            TimberFlipFlop(sim, name="f", d="d", clk="clk", q="q",
                           err="e", interval_ps=100, num_intervals=2,
                           num_tb_intervals=3)

    def test_err_initially_low(self, tsim):
        sim, _ = tsim
        assert sim.value("err") is Logic.ZERO


class TestNoError:
    def test_on_time_data_behaves_like_dff(self, tsim):
        sim, ff = tsim
        sim.drive("d", 1, 500)
        sim.run(2 * PERIOD)
        assert sim.value("q") is Logic.ONE
        assert ff.masked_count == 0
        assert ff.select_out == 0

    def test_no_spurious_flag(self, tsim):
        sim, ff = tsim
        sim.drive("d", 1, 500)
        sim.drive("d", 0, 1500)
        sim.run(4 * PERIOD)
        assert sim.value("err") is Logic.ZERO
        assert ff.flagged_count == 0


class TestSingleStageMasking:
    def test_tb_interval_masks_without_flag(self, tsim):
        sim, ff = tsim
        sim.drive("d", 1, PERIOD + 60)  # 60 ps late, within interval 1
        sim.run(2 * PERIOD)
        assert sim.value("q") is Logic.ONE      # masked
        assert sim.value("err") is Logic.ZERO   # TB: not flagged
        assert ff.masked_count == 1
        event = ff.events[0]
        assert event.borrowed_intervals == 1
        assert event.borrowed_ps == INTERVAL
        assert not event.flagged

    def test_select_out_increments(self, tsim):
        sim, ff = tsim
        sim.drive("d", 1, PERIOD + 60)
        sim.run(PERIOD + INTERVAL + 10)
        assert ff.select_out == 1

    def test_select_out_resets_on_clean_cycle(self, tsim):
        sim, ff = tsim
        sim.drive("d", 1, PERIOD + 60)
        sim.run(3 * PERIOD)  # next cycle is clean
        assert ff.select_out == 0

    def test_q_corrected_at_delayed_sample(self, tsim):
        sim, ff = tsim
        changes = []
        sim.on_change("q", lambda s, n, v, t: changes.append((t, v)))
        sim.drive("d", 1, PERIOD + 60)
        sim.run(2 * PERIOD)
        correction = [c for c in changes if c[1] is Logic.ONE]
        assert correction
        # M1 samples at edge + interval; the mux adds its small delay.
        assert correction[0][0] == PERIOD + INTERVAL + ff.mux_delay_ps


class TestMultiStageMasking:
    def test_relayed_select_borrows_ed_interval_and_flags(self, tsim):
        sim, ff = tsim
        ff.set_select(1)  # relay says fanin already borrowed one interval
        sim.drive("d", 1, PERIOD + 160)  # within 2 intervals
        sim.run(2 * PERIOD)
        assert sim.value("q") is Logic.ONE
        assert sim.value("err") is Logic.ONE  # ED interval -> flagged
        event = ff.events[0]
        assert event.borrowed_intervals == 2
        assert event.flagged

    def test_flag_latched_on_falling_edge(self, tsim):
        sim, ff = tsim
        ff.set_select(1)
        sim.drive("d", 1, PERIOD + 160)
        # Just before the falling edge of the error cycle the flag is
        # still low; it latches at the falling edge (PERIOD + 500).
        sim.run(PERIOD + 499)
        assert sim.value("err") is Logic.ZERO
        sim.run(PERIOD + 500)
        assert sim.value("err") is Logic.ONE

    def test_select_saturates_at_num_intervals(self, tsim):
        _, ff = tsim
        ff.set_select(17)
        assert ff.select_in == 2  # k-1 for k=3

    def test_negative_select_rejected(self, tsim):
        _, ff = tsim
        with pytest.raises(ConfigurationError):
            ff.set_select(-1)


class TestMetastabilityResolution:
    def test_m0_x_resolved_by_m1(self, tsim):
        sim, ff = tsim
        # Violate M0's setup aperture: M0 samples X, M1 resolves.
        sim.drive("d", 1, PERIOD - 5)
        sim.run(2 * PERIOD)
        assert sim.value("q") is Logic.ONE
        assert ff.masked_count == 1
        assert ff.events[0].m0_value is Logic.X
        assert ff.events[0].m1_value is Logic.ONE


class TestDisabled:
    def test_disabled_behaves_like_dff(self):
        sim = Simulator()
        ClockGenerator(sim, "clk", PERIOD)
        sim.set_initial("d", 0)
        ff = TimberFlipFlop(sim, name="f", d="d", clk="clk", q="q",
                            err="err", interval_ps=INTERVAL, enabled=False)
        sim.drive("d", 1, PERIOD + 60)  # late: a plain FF misses it
        sim.run(2 * PERIOD)
        assert sim.value("q") is Logic.ZERO
        assert ff.masked_count == 0


class TestErrorClear:
    def test_clear_error(self, tsim):
        sim, ff = tsim
        ff.set_select(1)
        sim.drive("d", 1, PERIOD + 160)
        sim.run(2 * PERIOD)
        assert sim.value("err") is Logic.ONE
        ff.clear_error()
        sim.run(2 * PERIOD + 10)
        assert sim.value("err") is Logic.ZERO
