"""Unit tests for the FF-level timing graph."""

import pytest

from repro.errors import AnalysisError, ConfigurationError
from repro.timing.graph import TimingGraph


@pytest.fixture
def graph():
    g = TimingGraph("t", 1000)
    for name in ("a", "b", "c", "d"):
        g.add_ff(name)
    g.add_edge("a", "b", 950)   # critical (top 10%)
    g.add_edge("b", "c", 920)   # critical (top 10%)
    g.add_edge("a", "c", 700)
    g.add_edge("c", "d", 400)
    return g


class TestConstruction:
    def test_counts(self, graph):
        assert graph.num_ffs == 4
        assert graph.num_edges == 4

    def test_duplicate_ff_rejected(self, graph):
        with pytest.raises(ConfigurationError):
            graph.add_ff("a")

    def test_unknown_ff_rejected(self, graph):
        with pytest.raises(ConfigurationError):
            graph.add_edge("a", "zz", 100)

    def test_delay_beyond_period_rejected(self, graph):
        # The static design must meet timing at sign-off.
        with pytest.raises(ConfigurationError, match="sign-off"):
            graph.add_edge("a", "d", 1001)

    def test_negative_delay_rejected(self, graph):
        with pytest.raises(ConfigurationError):
            graph.add_edge("a", "d", -1)

    def test_zero_period_rejected(self):
        with pytest.raises(ConfigurationError):
            TimingGraph("t", 0)

    def test_from_edges(self):
        g = TimingGraph.from_edges("t", 1000,
                                   [("x", "y", 900), ("y", "z", 500)])
        assert g.num_ffs == 3
        assert g.max_in_delay("y") == 900


class TestDelays:
    def test_max_in_delay(self, graph):
        assert graph.max_in_delay("c") == 920
        assert graph.max_in_delay("a") == 0

    def test_max_out_delay(self, graph):
        assert graph.max_out_delay("a") == 950
        assert graph.max_out_delay("d") == 0

    def test_in_out_edges(self, graph):
        assert {e.src for e in graph.in_edges("c")} == {"a", "b"}
        assert {e.dst for e in graph.out_edges("a")} == {"b", "c"}


class TestCriticality:
    def test_threshold(self, graph):
        assert graph.critical_threshold_ps(10) == 900
        assert graph.critical_threshold_ps(40) == 600

    def test_threshold_validates_percent(self, graph):
        with pytest.raises(AnalysisError):
            graph.critical_threshold_ps(0)
        with pytest.raises(AnalysisError):
            graph.critical_threshold_ps(101)

    def test_critical_edges(self, graph):
        crit = graph.critical_edges(10)
        assert {(e.src, e.dst) for e in crit} == {("a", "b"), ("b", "c")}

    def test_endpoints_startpoints(self, graph):
        assert graph.critical_endpoints(10) == {"b", "c"}
        assert graph.critical_startpoints(10) == {"a", "b"}

    def test_through_ffs(self, graph):
        # b ends a->b and starts b->c: the only multi-stage-susceptible FF.
        assert graph.critical_through_ffs(10) == {"b"}

    def test_wider_threshold_is_superset(self, graph):
        assert graph.critical_endpoints(10) <= graph.critical_endpoints(40)

    def test_critical_fanin_count(self, graph):
        # c's critical fanin from through-FFs: b->c (b is a through FF).
        assert graph.critical_fanin_count("c", 10) == 1
        # b's critical fanin a->b, but a is not a through FF.
        assert graph.critical_fanin_count("b", 10) == 0


class TestChains:
    def test_two_stage_chain_found(self, graph):
        chains = graph.critical_chains(10, max_length=3)
        pairs = [
            [(e.src, e.dst) for e in chain] for chain in chains
        ]
        assert [("a", "b"), ("b", "c")] in pairs

    def test_chain_length_bound(self, graph):
        chains = graph.critical_chains(10, max_length=1)
        assert all(len(chain) == 1 for chain in chains)

    def test_cycle_does_not_hang(self):
        g = TimingGraph("loop", 1000)
        g.add_ff("x")
        g.add_ff("y")
        g.add_edge("x", "y", 950)
        g.add_edge("y", "x", 960)
        chains = g.critical_chains(10, max_length=5)
        assert chains  # terminates and finds the chains
        assert max(len(c) for c in chains) <= 5
