"""Unit tests for simulation snapshots and background trajectories."""

import logging

import pytest

from repro.campaign import (
    BackgroundTrajectory,
    CampaignConfig,
    build_trajectory,
    trajectory_for,
)
from repro.campaign.engine import _build_graph_sim
from repro.campaign.trajectory import (
    TRAJECTORY_CACHE_ENV,
    trajectory_key,
)
from repro.errors import ConfigurationError
from repro.exec.worker import WARM
from repro.pipeline.controller import CentralErrorController
from repro.pipeline.pipeline import PipelineSimulation
from repro.pipeline.schemes import PlainPolicy, TimberFFPolicy
from repro.pipeline.stage import PipelineStage


def _stages(n=3, period=1000, seed=5):
    return [
        PipelineStage(name=f"s{i}", critical_delay_ps=int(period * 0.95),
                      typical_delay_ps=int(period * 0.7),
                      sensitization_prob=0.4, seed=seed + i)
        for i in range(n)
    ]


def _config(**overrides):
    defaults = dict(target="graph", scheme="timber-ff", num_faults=10,
                    num_cycles=400, snapshot_stride=100, seed=9)
    defaults.update(overrides)
    return CampaignConfig(**defaults)


class TestPipelineSnapshot:
    def test_windowed_run_matches_full_run_suffix(self):
        from repro.core.checking_period import CheckingPeriod

        def make():
            return PipelineSimulation(
                _stages(), TimberFFPolicy(3, CheckingPeriod.with_tb(
                    1000, 30.0)), period_ps=1000)

        full = make()
        full_result = full.run(200)
        probe = make()
        probe.run(120)
        state = probe.snapshot()
        resumed = make()
        resumed.restore(state)
        window = resumed.run(200, start_cycle=120)
        assert window.cycles == 80
        # The windowed aggregates must equal full-run minus prefix.
        prefix = make().run(120)
        for field in ("masked", "masked_flagged", "detected", "failed",
                      "clean"):
            assert getattr(window, field) == (
                getattr(full_result, field) - getattr(prefix, field)), field

    def test_snapshot_roundtrip_restores_relay_state(self):
        from repro.core.checking_period import CheckingPeriod

        sim = PipelineSimulation(
            _stages(), TimberFFPolicy(3, CheckingPeriod.with_tb(
                1000, 30.0)), period_ps=1000)
        sim.run(57)
        state = sim.snapshot()
        borrow, relay = state
        assert len(borrow) == 3
        select_in, next_select_in = relay
        assert len(select_in) == 3 and len(next_select_in) == 3
        sim.restore(state)
        assert sim.snapshot() == state

    def test_stateless_policy_snapshots_none(self):
        sim = PipelineSimulation(_stages(), PlainPolicy(3),
                                 period_ps=1000)
        assert sim.snapshot()[1] is None
        sim.restore(sim.snapshot())

    def test_controller_rejected(self):
        controller = CentralErrorController(period_ps=1000,
                                            consolidation_latency_ps=120)
        sim = PipelineSimulation(_stages(), PlainPolicy(3),
                                 period_ps=1000, controller=controller)
        with pytest.raises(ConfigurationError):
            sim.snapshot()
        with pytest.raises(ConfigurationError):
            sim.run(100, start_cycle=10)

    def test_bad_start_cycle_rejected(self):
        sim = PipelineSimulation(_stages(), PlainPolicy(3),
                                 period_ps=1000)
        with pytest.raises(ConfigurationError):
            sim.run(100, start_cycle=100)
        with pytest.raises(ConfigurationError):
            sim.run(100, start_cycle=-1)


class TestGraphSnapshot:
    def test_windowed_run_matches_full_run_suffix(self):
        config = _config()
        full = _build_graph_sim(config).run(400)
        probe = _build_graph_sim(config)
        probe.run(250)
        state = probe.snapshot()
        resumed = _build_graph_sim(config)
        resumed.restore(state)
        window = resumed.run(400, start_cycle=250)
        prefix = _build_graph_sim(config).run(250)
        for field in ("masked", "masked_flagged", "failed",
                      "failed_unprotected", "clean_captures"):
            assert getattr(window, field) == (
                getattr(full, field) - getattr(prefix, field)), field

    def test_full_run_resets_carried_state(self):
        config = _config()
        sim = _build_graph_sim(config)
        first = sim.run(400)
        second = sim.run(400)
        assert first == second

    def test_snapshot_roundtrip(self):
        config = _config()
        sim = _build_graph_sim(config)
        sim.run(123)
        state = sim.snapshot()
        sim.restore(state)
        assert sim.snapshot() == state


class TestBuildTrajectory:
    def test_snapshot_spacing_and_fork_points(self):
        config = _config(num_cycles=450, snapshot_stride=100)
        trajectory = build_trajectory(
            lambda: _build_graph_sim(config),
            num_cycles=450, stride=100)
        # Boundaries 0, 100, 200, 300, 400 — all strictly below 450.
        assert trajectory.num_snapshots == 5
        start, _ = trajectory.fork_point(0)
        assert start == 0
        start, _ = trajectory.fork_point(99)
        assert start == 0
        start, _ = trajectory.fork_point(100)
        assert start == 100
        start, _ = trajectory.fork_point(449)
        assert start == 400

    def test_snapshots_match_direct_prefix_runs(self):
        config = _config(num_cycles=300, snapshot_stride=75)
        trajectory = build_trajectory(
            lambda: _build_graph_sim(config),
            num_cycles=300, stride=75)
        for index in range(trajectory.num_snapshots):
            boundary = index * 75
            reference = _build_graph_sim(config)
            if boundary:
                reference.run(boundary)
            assert trajectory.snapshots[index] == reference.snapshot(), (
                boundary)

    def test_faulty_background_rejected(self):
        from repro.campaign import FaultOverlay, FaultSpec

        config = _config()
        overlay = FaultOverlay(
            [FaultSpec(fault_id=0, kind="seu", site="g1", cycle=5,
                       duration_cycles=1, magnitude_ps=100)],
            config.sites())
        with pytest.raises(ConfigurationError):
            build_trajectory(
                lambda: _build_graph_sim(config, faults=overlay),
                num_cycles=100, stride=10)

    def test_bad_stride_rejected(self):
        config = _config()
        with pytest.raises(ConfigurationError):
            build_trajectory(lambda: _build_graph_sim(config),
                             num_cycles=100, stride=0)


class TestTrajectoryCaching:
    def test_warm_cache_kind_trajectory(self):
        config = _config(seed=12345)
        params = config.background_params()
        WARM.clear()
        before = WARM.counters()
        builds = []

        def build():
            builds.append(1)
            return build_trajectory(lambda: _build_graph_sim(config),
                                    num_cycles=config.num_cycles,
                                    stride=config.snapshot_stride)

        first = trajectory_for(params, build)
        second = trajectory_for(params, build)
        assert first is second
        assert len(builds) == 1
        delta = WARM.delta(before, WARM.counters())
        assert delta["trajectory"] == [1, 1]

    def test_key_changes_with_any_background_param(self):
        base = _config().background_params()
        for field, value in (("scheme", "plain"), ("num_cycles", 999),
                             ("seed", 1), ("snapshot_stride", 7)):
            changed = dict(base)
            changed[field] = value
            assert trajectory_key(changed) != trajectory_key(base), field

    def test_disk_roundtrip_and_corruption_rebuild(self, tmp_path,
                                                   monkeypatch, caplog):
        config = _config(seed=777)
        params = config.background_params()
        monkeypatch.setenv(TRAJECTORY_CACHE_ENV, str(tmp_path))

        def build():
            return build_trajectory(lambda: _build_graph_sim(config),
                                    num_cycles=config.num_cycles,
                                    stride=config.snapshot_stride)

        WARM.clear()
        first = trajectory_for(params, build)
        entries = list(tmp_path.glob("*.json"))
        assert len(entries) == 1
        # A fresh process (cleared warm cache) loads from disk.
        WARM.clear()
        loaded = trajectory_for(params, build)
        assert isinstance(loaded, BackgroundTrajectory)
        assert loaded == first
        # Corrupt the entry: checksum-on-read logs, deletes, rebuilds.
        entries[0].write_text(entries[0].read_text().replace(
            '"result"', '"resolt"', 1))
        WARM.clear()
        with caplog.at_level(logging.WARNING, logger="repro.exec.cache"):
            rebuilt = trajectory_for(params, build)
        assert rebuilt == first
        assert any("corrupted" in record.message
                   for record in caplog.records)
        # The rebuild rewrote a valid entry.
        WARM.clear()
        assert trajectory_for(params, build) == first


class TestForkedEvaluatorFallbacks:
    def test_netlist_always_full_run(self):
        from repro.campaign.engine import _FullRunEvaluator, fault_runner

        config = _config(target="netlist", scheme="timber-ff",
                         kinds=("seu", "delay"))
        assert isinstance(fault_runner(config), _FullRunEvaluator)

    def test_env_flag_forces_full_runs(self, monkeypatch):
        from repro.campaign.engine import (
            FULL_RUNS_ENV,
            _FullRunEvaluator,
            fault_runner,
        )

        monkeypatch.setenv(FULL_RUNS_ENV, "1")
        assert isinstance(fault_runner(_config()), _FullRunEvaluator)

    def test_forked_results_match_full_run(self):
        from repro.campaign.engine import FULL_RUN_TARGETS, fault_runner
        from repro.exec.cache import encode_result

        config = _config(num_faults=30, num_cycles=500,
                         snapshot_stride=128)
        runner = fault_runner(config)
        assert runner.forked
        for spec in config.iter_population():
            full = FULL_RUN_TARGETS["graph"](config, spec)
            forked = runner.evaluate(spec)
            assert encode_result(full[0]) == encode_result(forked[0])

    def test_evaluation_order_is_permutation_grouped_by_stride(self):
        from repro.campaign.engine import fault_runner

        config = _config(num_faults=50, num_cycles=500,
                         snapshot_stride=100)
        runner = fault_runner(config)
        specs = list(config.iter_population())
        order = runner.evaluation_order(specs)
        assert sorted(order) == list(range(len(specs)))
        groups = [specs[i].cycle // 100 for i in order]
        assert groups == sorted(groups)
