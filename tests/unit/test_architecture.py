"""Unit tests for TIMBER deployment on a design."""

import pytest

from repro.core.architecture import TimberDesign, TimberStyle
from repro.errors import ConfigurationError
from repro.timing.graph import TimingGraph


@pytest.fixture
def graph():
    g = TimingGraph("t", 1000)
    for name in ("a", "b", "c", "d"):
        g.add_ff(name)
    g.add_edge("a", "b", 950)
    g.add_edge("b", "c", 920)
    g.add_edge("c", "d", 500)
    return g


class TestConfiguration:
    def test_checking_period_variants(self, graph):
        with_tb = TimberDesign(graph=graph, style=TimberStyle.FLIP_FLOP,
                               percent_checking=30.0)
        without = TimberDesign(graph=graph, style=TimberStyle.FLIP_FLOP,
                               percent_checking=30.0,
                               with_tb_interval=False)
        assert with_tb.checking_period.num_intervals == 3
        assert without.checking_period.num_intervals == 2
        assert with_tb.recovered_margin_percent == pytest.approx(10.0)
        assert without.recovered_margin_percent == pytest.approx(15.0)

    def test_rejects_bad_percent(self, graph):
        with pytest.raises(ConfigurationError):
            TimberDesign(graph=graph, style=TimberStyle.LATCH,
                         percent_checking=60.0)


class TestDeployment:
    def test_protected_ffs(self, graph):
        design = TimberDesign(graph=graph, style=TimberStyle.FLIP_FLOP,
                              percent_checking=10.0)
        assert design.protected_ffs == {"b", "c"}
        assert design.through_ffs == {"b"}

    def test_latch_style_has_no_relay(self, graph):
        design = TimberDesign(graph=graph, style=TimberStyle.LATCH,
                              percent_checking=10.0)
        assert design.relay() is None
        assert design.relay_meets_timing()

    def test_ff_style_relay_cost(self, graph):
        design = TimberDesign(graph=graph, style=TimberStyle.FLIP_FLOP,
                              percent_checking=10.0)
        cost = design.relay()
        assert cost is not None
        assert cost.num_protected_ffs == 2
        assert design.relay_meets_timing()


class TestSummary:
    def test_summary_keys(self, graph):
        design = TimberDesign(graph=graph, style=TimberStyle.FLIP_FLOP,
                              percent_checking=10.0)
        summary = design.summary()
        for key in ("checking_percent", "margin_percent", "ffs_replaced",
                    "power_overhead_percent", "relay_slack_percent"):
            assert key in summary

    def test_latch_cheaper_than_ff(self, graph):
        ff = TimberDesign(graph=graph, style=TimberStyle.FLIP_FLOP,
                          percent_checking=10.0)
        latch = TimberDesign(graph=graph, style=TimberStyle.LATCH,
                             percent_checking=10.0)
        assert latch.summary()["power_overhead_percent"] < \
            ff.summary()["power_overhead_percent"]

    def test_overhead_grows_with_checking_period(self, graph):
        small = TimberDesign(graph=graph, style=TimberStyle.FLIP_FLOP,
                             percent_checking=10.0)
        # At 50% the 500 ps path also qualifies: more FFs replaced.
        large = TimberDesign(graph=graph, style=TimberStyle.FLIP_FLOP,
                             percent_checking=50.0)
        assert large.summary()["ffs_replaced"] >= \
            small.summary()["ffs_replaced"]
        assert large.summary()["power_overhead_percent"] >= \
            small.summary()["power_overhead_percent"]
