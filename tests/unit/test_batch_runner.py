"""Unit tests for the fault-lane batched evaluator's wiring.

Covers the evaluator-selection matrix (``REPRO_CAMPAIGN_BATCH``,
``REPRO_CAMPAIGN_FULL_RUNS``, ``REPRO_SCALAR_KERNELS``), the
batched/replayed lane accounting, and the per-lane fallback rules —
the byte-identity of the outcomes themselves is pinned by
``tests/property/test_batch_props.py`` and the campaign golden.
"""

import json

import pytest

from repro.campaign import CampaignConfig, fault_runner
from repro.campaign.engine import (
    BATCH_ENV,
    FULL_RUNS_ENV,
    _BatchedEvaluator,
    _ForkedEvaluator,
    _FullRunEvaluator,
    batching_disabled,
)
from repro.exec.cache import encode_result
from repro.kernels import HAVE_NUMPY, SCALAR_ENV

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="lane batching needs the vector kernels")


def _config(**overrides):
    base = dict(num_faults=8, num_cycles=200, faults_per_task=8,
                seed=99, snapshot_stride=64)
    base.update(overrides)
    return CampaignConfig(**base)


def _encoded(value) -> str:
    return json.dumps(encode_result(value), sort_keys=True)


class TestRunnerSelectionMatrix:
    def test_default_vector_runner_is_batched(self, monkeypatch):
        monkeypatch.delenv(BATCH_ENV, raising=False)
        monkeypatch.delenv(FULL_RUNS_ENV, raising=False)
        monkeypatch.delenv(SCALAR_ENV, raising=False)
        runner = fault_runner(_config())
        assert isinstance(runner, _BatchedEvaluator)
        assert runner.batched and runner.forked

    def test_batch_env_zero_falls_back_to_forked(self, monkeypatch):
        monkeypatch.setenv(BATCH_ENV, "0")
        monkeypatch.delenv(FULL_RUNS_ENV, raising=False)
        assert batching_disabled()
        runner = fault_runner(_config())
        assert isinstance(runner, _ForkedEvaluator)
        assert not isinstance(runner, _BatchedEvaluator)
        assert not runner.batched

    def test_full_runs_env_disables_batching_too(self, monkeypatch):
        # The full-run reference stays the executable spec: forcing it
        # must win over batching even when batching is explicitly on.
        monkeypatch.setenv(FULL_RUNS_ENV, "1")
        monkeypatch.setenv(BATCH_ENV, "1")
        runner = fault_runner(_config())
        assert isinstance(runner, _FullRunEvaluator)
        assert not runner.forked and not runner.batched

    def test_scalar_kernels_disable_batching(self, monkeypatch):
        monkeypatch.setenv(SCALAR_ENV, "1")
        monkeypatch.delenv(BATCH_ENV, raising=False)
        monkeypatch.delenv(FULL_RUNS_ENV, raising=False)
        runner = fault_runner(_config())
        assert isinstance(runner, _ForkedEvaluator)
        assert not isinstance(runner, _BatchedEvaluator)

    def test_netlist_always_takes_full_runs(self, monkeypatch):
        monkeypatch.delenv(BATCH_ENV, raising=False)
        monkeypatch.delenv(FULL_RUNS_ENV, raising=False)
        runner = fault_runner(_config(target="netlist", scheme="plain",
                                      num_faults=2))
        assert isinstance(runner, _FullRunEvaluator)

    def test_batch_env_other_values_keep_batching(self, monkeypatch):
        for value in ("", "1", "yes"):
            monkeypatch.setenv(BATCH_ENV, value)
            assert not batching_disabled()


class TestLaneAccounting:
    def test_every_fault_is_batched_or_replayed(self):
        config = _config()
        runner = _BatchedEvaluator(config)
        specs = config.population()
        runner.evaluate_chunk(specs)
        assert runner.lanes_batched + runner.lanes_replayed == len(specs)
        assert runner.lanes_batched > 0

    def test_unsupported_policy_has_no_machine_and_replays(self):
        # ``logical`` has no pure array capture semantics: the machine
        # factory refuses, every lane replays, outcomes still match the
        # plain forked evaluator.
        config = _config(scheme="logical")
        runner = _BatchedEvaluator(config)
        assert runner.machine is None
        specs = config.population()
        outcomes, _ = runner.evaluate_chunk(specs)
        assert runner.lanes_batched == 0
        assert runner.lanes_replayed == len(specs)
        forked, _ = _ForkedEvaluator(config).evaluate_chunk(specs)
        assert _encoded(outcomes) == _encoded(forked)

    def test_single_fault_evaluate_uses_one_lane_group(self):
        config = _config()
        runner = _BatchedEvaluator(config)
        spec = config.population()[0]
        outcome, units = runner.evaluate(spec)
        assert runner.lanes_batched + runner.lanes_replayed == 1
        assert outcome.fault_id == spec.fault_id
        assert units > 0
