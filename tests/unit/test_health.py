"""Unit tests for repro.obs.health: the event-prefix -> RunHealth fold."""

from repro.obs.health import (
    HEALTH_SCHEMA_VERSION,
    HealthFold,
    RunHealth,
    fold_events,
)
from repro.obs.render import (
    format_status_line,
    render_dashboard,
    render_html,
)

SEC = 1_000_000_000  # mono_ns per second


def header(**kwargs):
    base = {"type": "header", "schema": 1, "run_id": "run-1",
            "kind": "sweep", "heartbeat_s": 5.0}
    base.update(kwargs)
    return base


def ev(seq, etype, t=0.0, **fields):
    """Event at ``t`` seconds on both clocks (wall anchored at 1000)."""
    return {"seq": seq, "type": etype, "wall": 1000.0 + t,
            "mono_ns": int(t * SEC), **fields}


def progress(seq, t, done, **fields):
    fields.setdefault("executed", done)
    return ev(seq, "progress", t, done=done, **fields)


class TestLifecycle:
    def test_empty_fold_is_pending(self):
        health = HealthFold().health()
        assert health.lifecycle == "pending"
        assert health.status == "pending"
        assert isinstance(health, RunHealth)

    def test_header_identity(self):
        fold = HealthFold()
        fold.apply(header())
        health = fold.health()
        assert health.run_id == "run-1"
        assert health.kind == "sweep"
        assert health.heartbeat_s == 5.0

    def test_run_start_to_done(self):
        health = fold_events([
            header(),
            ev(1, "run_start", 0.0, total=10, unit="tasks"),
            ev(2, "run_end", 1.0, status="ok"),
        ])
        assert health.lifecycle == "done"
        assert health.status == "done"
        assert health.total == 10

    def test_drain_and_drained(self):
        fold = HealthFold()
        fold.apply(header())
        fold.apply(ev(1, "run_start", 0.0))
        fold.apply(ev(2, "drain", 1.0, signum=15))
        assert fold.health().lifecycle == "draining"
        fold.apply(ev(3, "run_end", 2.0, status="drained"))
        assert fold.health().lifecycle == "drained"

    def test_error_status(self):
        health = fold_events([
            header(), ev(1, "run_start", 0.0),
            ev(2, "run_end", 1.0, status="error"),
        ])
        assert health.lifecycle == "error"

    def test_total_falls_back_to_phase_totals(self):
        health = fold_events([
            header(), ev(1, "run_start", 0.0),
            ev(2, "phase_start", 0.1, phase="plain", total=40,
               workers=2),
            ev(3, "phase_start", 5.0, phase="timber-ff", total=40,
               workers=2),
        ])
        assert health.total == 80
        assert health.phase == "timber-ff"
        assert health.workers == 2


class TestCountersAndRates:
    def test_progress_counters_are_cumulative(self):
        health = fold_events([
            header(), ev(1, "run_start", 0.0, total=100),
            progress(2, 1.0, 10, cached=2, executed=8, busy_s=7.5,
                     workers=2),
            progress(3, 2.0, 30, cached=5, executed=25, busy_s=15.0,
                     workers=2),
        ])
        assert health.done == 30
        assert health.cached == 5
        assert health.executed == 25
        assert health.busy_s == 15.0
        assert health.cache_hit_rate == 5 / 30
        # 2 workers over 2s elapsed with 15 busy-seconds: saturated.
        assert health.utilization == 1.0

    def test_throughput_ema_and_eta(self):
        events = [header(), ev(1, "run_start", 0.0, total=100)]
        for i in range(1, 6):
            events.append(progress(i + 1, float(i), i * 10))
        health = fold_events(events)
        # Constant 10 units/s: the EMA converges to the same rate.
        assert abs(health.throughput - 10.0) < 1e-9
        assert abs(health.eta_s - 5.0) < 1e-9
        assert health.throughput_peak >= health.throughput

    def test_eta_absent_once_run_ends(self):
        health = fold_events([
            header(), ev(1, "run_start", 0.0, total=100),
            progress(2, 1.0, 10), progress(3, 2.0, 20),
            ev(4, "run_end", 3.0, status="ok"),
        ])
        assert health.eta_s is None

    def test_resilience_events_merge_with_progress_maximum(self):
        health = fold_events([
            header(), ev(1, "run_start", 0.0),
            ev(2, "retry", 0.5, key="a", total=3),
            progress(3, 1.0, 10, retries=2),   # older cumulative view
            ev(4, "crash", 1.5, key="b", total=1),
            ev(5, "quarantine", 1.6, key="c", total=2),
        ])
        assert health.retries == 3
        assert health.crashes == 1
        assert health.poisoned == 2

    def test_checkpoint_total(self):
        health = fold_events([
            header(), ev(1, "run_start", 0.0),
            ev(2, "checkpoint", 1.0, total=4, records=32),
        ])
        assert health.checkpoints == 4


class TestStaleness:
    def live_prefix(self):
        return [header(), ev(1, "run_start", 0.0),
                progress(2, 1.0, 5)]

    def test_fresh_run_is_not_stale(self):
        health = fold_events(self.live_prefix(), now_wall=1001.5)
        assert not health.stale
        assert health.status == "running"

    def test_silence_past_heartbeat_is_stale(self):
        health = fold_events(self.live_prefix(), now_wall=1011.0)
        assert health.stale
        assert health.status == "stale"
        assert health.lifecycle == "running"
        assert "stalled_heartbeat" in health.flags

    def test_finished_run_never_goes_stale(self):
        events = self.live_prefix() + [
            ev(3, "run_end", 2.0, status="ok")]
        health = fold_events(events, now_wall=99999.0)
        assert not health.stale
        assert health.status == "done"

    def test_stale_after_override(self):
        health = fold_events(self.live_prefix(), now_wall=1003.0,
                             stale_after_s=1.0)
        assert health.stale
        health = fold_events(self.live_prefix(), now_wall=1003.0,
                             stale_after_s=60.0)
        assert not health.stale

    def test_no_now_skips_staleness(self):
        health = fold_events(self.live_prefix())
        assert not health.stale
        assert health.last_event_age_s is None


class TestAnomalyFlags:
    def test_retry_storm(self):
        health = fold_events([
            header(), ev(1, "run_start", 0.0),
            progress(2, 1.0, 12, executed=12, retries=12),
        ])
        assert "retry_storm" in health.flags

    def test_few_retries_is_not_a_storm(self):
        health = fold_events([
            header(), ev(1, "run_start", 0.0),
            progress(2, 1.0, 100, executed=100, retries=9),
        ])
        assert "retry_storm" not in health.flags

    def test_throughput_collapse(self):
        events = [header(), ev(1, "run_start", 0.0, total=10_000)]
        seq = 2
        # Fast warmup: 100 units/s for 5 samples.
        for i in range(1, 6):
            events.append(progress(seq, float(i), i * 100))
            seq += 1
        # Collapse: 1 unit per 10 s from then on.
        done = 500
        t = 5.0
        for _ in range(6):
            t += 10.0
            done += 1
            events.append(progress(seq, t, done))
            seq += 1
        health = fold_events(events)
        assert "throughput_collapse" in health.flags
        assert health.throughput < 0.25 * health.throughput_peak


class TestSoakRounds:
    def round_ev(self, seq, t, rnd, faults):
        return ev(seq, "round", t, round=rnd, faults=faults,
                  escape_rate=0.25, ci_low=0.2, ci_high=0.3,
                  widest_stratum="seu/0-10", widest_ci_width=0.4,
                  per_stratum=[{"stratum": "seu/0-10", "samples": 10,
                                "width": 0.4}])

    def test_round_switches_unit_to_faults(self):
        health = fold_events([
            header(kind="soak"),
            ev(1, "run_start", 0.0, unit="faults", total=1000),
            self.round_ev(2, 1.0, 1, 200),
            self.round_ev(3, 2.0, 2, 400),
        ])
        assert health.unit == "faults"
        assert health.done == 400
        assert health.soak["rounds"] == 2
        assert health.soak["escape_rate"] == 0.25
        assert health.soak["widest_stratum"] == "seu/0-10"
        # 200 faults/s once the round-based estimator has two samples.
        assert abs(health.throughput - 200.0) < 1e-9
        assert abs(health.eta_s - 3.0) < 1e-9

    def test_runner_progress_does_not_pollute_fault_rate(self):
        # Task-level progress events (the chunk executor) interleave
        # with rounds; once rounds appear, they own rate estimation.
        health = fold_events([
            header(kind="soak"),
            ev(1, "run_start", 0.0, unit="faults"),
            progress(2, 0.5, 3),
            self.round_ev(3, 1.0, 1, 200),
            progress(4, 1.5, 9),
            self.round_ev(5, 2.0, 2, 400),
        ])
        assert abs(health.throughput - 200.0) < 1e-9
        assert health.done == 400


class TestProjection:
    def test_to_json_schema(self):
        health = fold_events([header(), ev(1, "run_start", 0.0)])
        body = health.to_json()
        assert body["schema"] == HEALTH_SCHEMA_VERSION
        for key in ("run_id", "kind", "lifecycle", "status", "stale",
                    "flags", "done", "total", "throughput", "eta_s",
                    "retries", "crashes", "workers", "utilization",
                    "cache_hit_rate", "soak", "last_event_age_s"):
            assert key in body
        assert isinstance(body["flags"], list)

    def test_status_line_and_dashboard_render(self):
        events = [header(), ev(1, "run_start", 0.0, total=100),
                  progress(2, 1.0, 10, cached=4, executed=6,
                           workers=2, busy_s=1.4),
                  ev(3, "retry", 1.2, key="a", total=1)]
        health = fold_events(events, now_wall=1001.5)
        line = format_status_line(health)
        assert "sweep" in line
        assert "10/100" in line
        dashboard = render_dashboard(health)
        assert "run-1" in dashboard
        assert "retries 1" in dashboard

    def test_html_report_renders(self):
        events = [header(kind="soak"),
                  ev(1, "run_start", 0.0, unit="faults"),
                  ev(2, "round", 1.0, round=1, faults=100,
                     escape_rate=0.1, ci_low=0.05, ci_high=0.15,
                     widest_stratum="seu/0-10", widest_ci_width=0.3,
                     per_stratum=[{"stratum": "seu/0-10",
                                   "samples": 10, "width": 0.3}])]
        health = fold_events(events)
        page = render_html(health, events=events)
        assert "<html" in page
        assert "run-1" in page
        assert "seu/0-10" in page


def metrics(seq, t, faults_by_class):
    """A ``metrics`` event carrying outcome-counter snapshot deltas."""
    return ev(seq, "metrics", t, delta={
        "repro_campaign_outcomes_total": {
            "kind": "counter",
            "series": [
                {"labels": {"target": "pipeline", "scheme": "timber-ff",
                            "classification": cls}, "value": value}
                for cls, value in faults_by_class.items()
            ],
        },
    })


class TestFaultThroughput:
    def test_metrics_deltas_sum_into_faults_per_second(self):
        health = fold_events([
            header(), ev(1, "run_start", 0.0, total=10),
            metrics(2, 1.0, {"masked_tb": 70, "escaped": 50}),
            metrics(3, 3.0, {"masked_tb": 60, "benign": 20}),
            ev(4, "run_end", 4.0, status="ok"),
        ])
        assert health.faults_classified == 200
        assert abs(health.faults_per_second - 50.0) < 1e-9

    def test_no_metrics_means_no_fault_rate(self):
        health = fold_events([
            header(), ev(1, "run_start", 0.0, total=10),
            progress(2, 1.0, 5),
        ])
        assert health.faults_classified == 0
        assert health.faults_per_second is None

    def test_unrelated_metrics_families_are_ignored(self):
        health = fold_events([
            header(), ev(1, "run_start", 0.0),
            ev(2, "metrics", 1.0, delta={
                "repro_pipeline_outcomes_total": {
                    "kind": "counter",
                    "series": [{"labels": {"outcome": "masked"},
                                "value": 9}],
                },
            }),
        ])
        assert health.faults_classified == 0

    def test_schema_and_json_round_trip(self):
        health = fold_events([
            header(), ev(1, "run_start", 0.0),
            metrics(2, 2.0, {"relayed": 10}),
        ])
        body = health.to_json()
        assert body["schema"] == HEALTH_SCHEMA_VERSION == 2
        assert body["faults_classified"] == 10
        assert abs(body["faults_per_second"] - 5.0) < 1e-9

    def test_renderers_surface_fault_rate(self):
        health = fold_events([
            header(), ev(1, "run_start", 0.0, total=10),
            progress(2, 1.0, 5),
            metrics(3, 2.0, {"masked_tb": 100}),
        ])
        assert "faults/s" in format_status_line(health)
        dashboard = render_dashboard(health)
        assert "classified 100" in dashboard
        assert "faults/s" in dashboard
        html = render_html(health)
        assert "fault throughput" in html
