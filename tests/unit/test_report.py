"""Unit tests for report assembly."""

import pytest

from repro.analysis.report import (
    ARTEFACT_TITLES,
    collect_sections,
    generate_report,
)
from repro.errors import AnalysisError


@pytest.fixture
def out_dir(tmp_path):
    (tmp_path / "table1_comparison.txt").write_text("TABLE-ONE")
    (tmp_path / "fig1_critical_path_distribution.txt").write_text("FIG1")
    (tmp_path / "custom_experiment.txt").write_text("CUSTOM")
    return tmp_path


class TestCollect:
    def test_known_artefacts_in_order(self, out_dir):
        sections = collect_sections(out_dir)
        keys = [s.key for s in sections]
        assert keys.index("table1_comparison") < keys.index(
            "fig1_critical_path_distribution")

    def test_unknown_artefacts_appended(self, out_dir):
        sections = collect_sections(out_dir)
        assert sections[-1].key == "custom_experiment"
        assert sections[-1].body == "CUSTOM"

    def test_titles_resolved(self, out_dir):
        sections = collect_sections(out_dir)
        table1 = next(s for s in sections if s.key == "table1_comparison")
        assert "Table 1" in table1.title

    def test_missing_dir_rejected(self, tmp_path):
        with pytest.raises(AnalysisError):
            collect_sections(tmp_path / "nope")


class TestGenerate:
    def test_report_contains_all_bodies(self, out_dir):
        text = generate_report(out_dir)
        assert "TABLE-ONE" in text
        assert "FIG1" in text
        assert "CUSTOM" in text
        assert text.startswith("# TIMBER reproduction report")

    def test_custom_title(self, out_dir):
        text = generate_report(out_dir, title="My run")
        assert text.startswith("# My run")

    def test_empty_dir_rejected(self, tmp_path):
        with pytest.raises(AnalysisError):
            generate_report(tmp_path)

    def test_every_known_artefact_has_unique_key(self):
        keys = [key for key, _ in ARTEFACT_TITLES]
        assert len(keys) == len(set(keys))
