"""Unit tests for synthetic netlist generators."""

import pytest

from repro.circuit.generate import inverter_chain, padded_short_path, random_stage
from repro.errors import ConfigurationError
from repro.timing.sta import run_sta


class TestInverterChain:
    def test_length_matches(self):
        chain = inverter_chain(5)
        assert len(chain) == 5

    def test_delay_is_exact(self):
        chain = inverter_chain(10)
        result = run_sta(chain, period_ps=10_000, clk_to_q_ps=0, setup_ps=0)
        inv_delay = chain.library["INV"].delay_ps
        assert result.max_arrival[chain.capture_nets[0]] == 10 * inv_delay

    def test_rejects_zero_length(self):
        with pytest.raises(ConfigurationError):
            inverter_chain(0)


class TestRandomStage:
    def test_structure(self):
        stage = random_stage(num_inputs=8, num_outputs=4, depth=6, width=10,
                             seed=3)
        assert len(stage) == 6 * 10
        assert len(stage.launch_nets) == 8
        assert len(stage.capture_nets) == 4

    def test_deterministic_for_same_seed(self):
        a = random_stage(num_inputs=4, num_outputs=2, depth=3, width=4,
                         seed=9)
        b = random_stage(num_inputs=4, num_outputs=2, depth=3, width=4,
                         seed=9)
        assert [(g.name, g.cell.name, g.inputs) for g in a] == \
               [(g.name, g.cell.name, g.inputs) for g in b]

    def test_different_seed_differs(self):
        a = random_stage(num_inputs=4, num_outputs=2, depth=3, width=4,
                         seed=9)
        b = random_stage(num_inputs=4, num_outputs=2, depth=3, width=4,
                         seed=10)
        assert [(g.cell.name, g.inputs) for g in a] != \
               [(g.cell.name, g.inputs) for g in b]

    def test_depth_bounds_arrival(self):
        stage = random_stage(num_inputs=6, num_outputs=3, depth=4, width=8,
                             seed=1)
        result = run_sta(stage, period_ps=10_000, clk_to_q_ps=0, setup_ps=0)
        slowest_cell = max(
            stage.library[c].delay_ps
            for c in ("NAND2", "NOR2", "AND2", "OR2", "XOR2", "XNOR2")
        )
        for capture in stage.capture_nets:
            assert result.max_arrival[capture] <= 4 * slowest_cell

    @pytest.mark.parametrize("kwargs", [
        dict(num_inputs=1, num_outputs=1, depth=1, width=1),
        dict(num_inputs=4, num_outputs=0, depth=1, width=2),
        dict(num_inputs=4, num_outputs=3, depth=1, width=2),
        dict(num_inputs=4, num_outputs=1, depth=0, width=2),
    ])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            random_stage(seed=0, **kwargs)


class TestPaddedShortPath:
    def test_padding_delay(self):
        netlist = padded_short_path(padding_cells=3)
        result = run_sta(netlist, period_ps=10_000, clk_to_q_ps=0,
                         setup_ps=0)
        dly = netlist.library["DLY4"].delay_ps
        assert result.max_arrival[netlist.capture_nets[0]] == 3 * dly

    def test_zero_padding_uses_feedthrough_buffer(self):
        netlist = padded_short_path(padding_cells=0)
        assert len(netlist) == 1

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            padded_short_path(padding_cells=-1)
