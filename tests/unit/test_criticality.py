"""Unit tests for the memoized criticality index."""

import pytest

from repro.errors import AnalysisError, ConfigurationError
from repro.exec.worker import WARM
from repro.pipeline.graph_sim import GraphPipelineSimulation
from repro.timing.criticality import (
    CriticalityIndex,
    critical_threshold_ps,
    naive_critical_endpoints,
)
from repro.timing.graph import TimingGraph


def chain_graph() -> TimingGraph:
    graph = TimingGraph("t", 1000)
    for name in ("a", "b", "c", "d", "e"):
        graph.add_ff(name)
    graph.add_edge("a", "b", 950)
    graph.add_edge("b", "c", 930)
    graph.add_edge("b", "d", 910)
    graph.add_edge("e", "c", 920)
    graph.add_edge("c", "e", 905)
    return graph


class TestView:
    def test_view_contents(self):
        view = chain_graph().criticality().view(10)
        assert view.threshold_ps == 900
        # edges() groups by source FF: a->b, b->c, b->d, c->e, e->c.
        assert [e.delay_ps for e in view.edges] == [950, 930, 910, 905,
                                                    920]
        assert view.endpoints == {"b", "c", "d", "e"}
        assert view.startpoints == {"a", "b", "c", "e"}
        assert view.through == {"b", "c", "e"}
        # Relay adjacency: deduplicated critical fanin from through FFs.
        assert view.relay_srcs == {"c": ("b", "e"), "d": ("b",),
                                   "e": ("c",)}
        assert view.fanin_count("c") == 2
        assert view.fanin_count("b") == 0  # a is not a through FF
        assert view.fanin_count("nope") == 0

    def test_edges_keep_graph_order(self):
        graph = chain_graph()
        assert graph.critical_edges(10) == [
            e for e in graph.edges() if e.delay_ps >= 900]

    def test_empty_view(self):
        graph = TimingGraph("cold", 1000)
        graph.add_ff("x")
        graph.add_ff("y")
        graph.add_edge("x", "y", 100)
        view = graph.criticality().view(10)
        assert view.edges == ()
        assert view.endpoints == frozenset()
        assert view.relay_srcs == {}

    def test_views_are_cached_per_percent(self):
        index = chain_graph().criticality()
        assert index.view(10) is index.view(10)
        assert index.view(10) is not index.view(20)

    def test_percent_validation(self):
        graph = chain_graph()
        for bad in (0, -1, 101):
            with pytest.raises(AnalysisError):
                graph.criticality().view(bad)
            with pytest.raises(AnalysisError):
                graph.critical_threshold_ps(bad)

    def test_threshold_matches_graph_formula(self):
        for percent in (0.5, 10, 33.3, 50, 100):
            assert critical_threshold_ps(1000, percent) == \
                int(round(1000 * (1 - percent / 100.0)))

    def test_fanin_count_unknown_ff_raises(self):
        with pytest.raises(KeyError):
            chain_graph().critical_fanin_count("ghost", 10)


class TestInvalidation:
    def test_add_edge_after_query_invalidates_cache(self):
        graph = chain_graph()
        before = graph.critical_endpoints(10)
        assert "a" not in before
        graph.add_edge("d", "a", 990)  # new critical edge into a
        after = graph.critical_endpoints(10)
        assert "a" in after
        assert after == naive_critical_endpoints(graph, 10)
        # The through set gains d (ends b->d, now starts d->a).
        assert "d" in graph.critical_through_ffs(10)

    def test_add_ff_after_query_invalidates_cache(self):
        graph = chain_graph()
        graph.critical_endpoints(10)
        first = graph.criticality()
        graph.add_ff("f")
        graph.add_edge("f", "a", 970)
        assert graph.criticality() is not first
        assert graph.critical_endpoints(10) == \
            naive_critical_endpoints(graph, 10)


class TestWarmCache:
    def test_identical_graphs_share_one_index(self):
        graphs = [chain_graph(), chain_graph()]
        # Bypass the per-graph memo on both: fresh instances.
        before = WARM.counters()
        first = graphs[0].criticality()
        second = graphs[1].criticality()
        delta = WARM.stats_delta(before)
        hits, misses = delta.get("criticality", [0, 0])
        assert hits >= 1
        assert second is first

    def test_different_content_misses(self):
        graph = chain_graph()
        other = chain_graph()
        other.add_edge("a", "e", 999)
        before = WARM.counters()
        assert graph.criticality() is not other.criticality()
        delta = WARM.stats_delta(before)
        hits, misses = delta.get("criticality", [0, 0])
        assert misses >= 1


class TestGraphSimWiring:
    def test_simulator_relay_adjacency_matches_view(self):
        graph = chain_graph()
        sim = GraphPipelineSimulation(
            graph, scheme="timber-ff", percent_checking=10)
        view = graph.criticality().view(10)
        assert sim.protected == set(view.endpoints)
        assert sim._relay_srcs == {
            ff: list(view.relay_srcs.get(ff, ()))
            for ff in view.endpoints
        }

    def test_plain_scheme_protects_nothing_but_validates(self):
        graph = chain_graph()
        sim = GraphPipelineSimulation(
            graph, scheme="plain", percent_checking=10)
        assert sim.protected == set()
        assert sim._relay_srcs == {}
        # CheckingPeriod rejects the percent before the view is built.
        with pytest.raises(ConfigurationError):
            GraphPipelineSimulation(
                graph, scheme="plain", percent_checking=0)
