"""Unit tests for the soak subsystem: strata, estimators, sampler,
ring, journal, checkpoint, and the driver's resume semantics."""

import json

import pytest

from repro.campaign import CampaignConfig
from repro.errors import ConfigurationError, ReproError
from repro.soak import (
    AdaptiveSampler,
    EscapeEstimator,
    JournalCorrupt,
    SoakCheckpoint,
    SoakConfig,
    SoakJournal,
    SoakRing,
    allocate_counts,
    build_strata,
    run_soak,
    soak_state_from_journal,
    spec_for_draw,
    wilson_interval,
)
from repro.soak.generator import magnitude_bins


def small_config(**overrides) -> CampaignConfig:
    params = dict(target="graph", scheme="timber-ff", num_faults=1,
                  num_cycles=300, faults_per_task=10)
    params.update(overrides)
    return CampaignConfig(**params)


def small_soak(**overrides) -> SoakConfig:
    params = dict(campaign=small_config(), faults_per_round=20,
                  magnitude_bins=2)
    params.update(overrides)
    return SoakConfig(**params)


class TestMagnitudeBins:
    def test_even_split_covers_the_range_exactly(self):
        bins = magnitude_bins(20, 220, 3)
        assert bins[0][0] == 20 and bins[-1][1] == 220
        # Contiguous, non-overlapping, sizes differ by at most one.
        for (lo_a, hi_a), (lo_b, _hi_b) in zip(bins, bins[1:]):
            assert lo_b == hi_a + 1
        sizes = [hi - lo + 1 for lo, hi in bins]
        assert max(sizes) - min(sizes) <= 1

    def test_more_bins_than_integers_clamps(self):
        assert magnitude_bins(5, 6, 10) == [(5, 5), (6, 6)]

    def test_bad_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            magnitude_bins(20, 220, 0)
        with pytest.raises(ConfigurationError):
            magnitude_bins(100, 50, 2)


class TestStrata:
    def test_kind_by_bin_grid_in_stable_order(self):
        strata = build_strata(small_config(), 2)
        assert [s.key for s in strata] == [
            "seu/20-120", "seu/121-220",
            "delay/20-120", "delay/121-220",
            "droop/20-120", "droop/121-220",
            "correlated/20-120", "correlated/121-220",
        ]

    def test_netlist_restricts_kinds(self):
        config = small_config(target="netlist", scheme="timber-ff")
        kinds = {s.kind for s in build_strata(config, 2)}
        assert kinds == {"seu", "delay"}

    def test_spec_pure_in_stratum_and_counter(self):
        config = small_config()
        stratum = build_strata(config, 2)[1]
        a = spec_for_draw(config, stratum, 7, fault_id=123)
        b = spec_for_draw(config, stratum, 7, fault_id=999)
        # Shape depends only on (stratum, counter); the id is attached.
        assert a.fault_id == 123 and b.fault_id == 999
        assert (a.kind, a.site, a.cycle, a.duration_cycles,
                a.magnitude_ps, a.span) == \
               (b.kind, b.site, b.cycle, b.duration_cycles,
                b.magnitude_ps, b.span)

    def test_spec_respects_stratum_bounds(self):
        config = small_config()
        for stratum in build_strata(config, 3):
            for counter in range(25):
                spec = spec_for_draw(config, stratum, counter, counter)
                assert spec.kind == stratum.kind
                assert stratum.lo_ps <= spec.magnitude_ps \
                    <= stratum.hi_ps


class TestWilson:
    def test_unsampled_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_interval_brackets_the_rate_within_bounds(self):
        low, high = wilson_interval(3, 10)
        assert 0.0 <= low <= 0.3 <= high <= 1.0

    def test_width_narrows_with_samples(self):
        widths = [wilson_interval(n // 5, n)[1]
                  - wilson_interval(n // 5, n)[0]
                  for n in (5, 50, 500)]
        assert widths[0] > widths[1] > widths[2]

    def test_zero_rate_keeps_positive_width(self):
        low, high = wilson_interval(0, 50)
        assert low == 0.0 and high > 0.0  # Wald would collapse here

    def test_bad_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            wilson_interval(5, 3)


class TestEstimator:
    def test_counts_and_rates(self):
        estimator = EscapeEstimator(["a", "b"])
        estimator.update("a", "escaped")
        estimator.update("a", "masked_tb", count=3)
        stats = estimator.stats("a")
        assert stats.n == 4 and stats.escaped == 1
        assert stats.escape_rate == 0.25
        assert estimator.total_faults() == 4

    def test_widest_prefers_unsampled(self):
        estimator = EscapeEstimator(["a", "b"])
        estimator.update("a", "benign", count=100)
        assert estimator.widest().key == "b"

    def test_overall_is_uniform_over_strata(self):
        # Unbalanced sampling must not tilt the combined estimate:
        # stratum rates 0.5 and 0.0 combine to 0.25 regardless of n.
        estimator = EscapeEstimator(["a", "b"])
        estimator.update("a", "escaped", count=5)
        estimator.update("a", "benign", count=5)
        estimator.update("b", "benign", count=990)
        assert estimator.overall()["escape_rate"] == \
            pytest.approx(0.25)

    def test_snapshot_restore_round_trip(self):
        estimator = EscapeEstimator(["a", "b"])
        estimator.update("a", "escaped", count=2)
        estimator.update("b", "relayed", count=7)
        clone = EscapeEstimator.restore(["a", "b"],
                                        estimator.snapshot())
        assert clone.snapshot() == estimator.snapshot()
        assert clone.widest().key == estimator.widest().key

    def test_unknown_class_rejected(self):
        estimator = EscapeEstimator(["a"])
        with pytest.raises(ConfigurationError):
            estimator.update("a", "exploded")


class TestSampler:
    def test_allocate_counts_sums_and_is_deterministic(self):
        counts = allocate_counts([0.5, 0.3, 0.2], 7)
        assert sum(counts) == 7
        assert counts == allocate_counts([0.5, 0.3, 0.2], 7)
        # Largest remainder: exact shares 3.5/2.1/1.4 -> 4/2/1.
        assert counts == [4, 2, 1]

    def test_uniform_mode_ignores_the_estimator(self):
        estimator = EscapeEstimator(["a", "b"])
        estimator.update("a", "escaped", count=3)
        sampler = AdaptiveSampler(["a", "b"], adaptive=False)
        assert sampler.weights(estimator) == {"a": 0.5, "b": 0.5}

    def test_adaptive_weights_follow_ci_width_with_floor(self):
        estimator = EscapeEstimator(["wide", "narrow"])
        estimator.update("narrow", "benign", count=400)
        estimator.update("wide", "escaped", count=2)
        estimator.update("wide", "benign", count=2)
        sampler = AdaptiveSampler(["wide", "narrow"], min_weight=0.1)
        weights = sampler.weights(estimator)
        assert weights["wide"] > weights["narrow"] >= 0.1
        assert sum(weights.values()) == pytest.approx(1.0)

    def test_floor_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            AdaptiveSampler(["a", "b"], min_weight=0.6)  # > uniform


class TestRing:
    def test_backpressure_and_fifo(self):
        ring = SoakRing(3)
        assert ring.push(1) and ring.push(2) and ring.push(3)
        assert ring.full and not ring.push(4)
        assert ring.take(2) == [1, 2]
        assert ring.free == 2

    def test_fill_from_leaves_the_rest_in_the_source(self):
        ring = SoakRing(2)
        source = iter(range(5))
        assert ring.fill_from(source) == 2
        assert ring.take(10) == [0, 1]
        assert ring.fill_from(source) == 2
        assert next(source) == 4  # 4 was never pulled

    def test_accepted_is_monotonic(self):
        ring = SoakRing(2)
        ring.fill_from(iter(range(2)))
        ring.take(2)
        ring.fill_from(iter(range(2)))
        assert ring.accepted == 4


class TestJournal:
    def test_fresh_append_read_round_trip(self, tmp_path):
        journal = SoakJournal(tmp_path / "j.jsonl")
        journal.open_fresh({"run_key": "k"})
        journal.append({"type": "round", "round": 0})
        journal.append({"type": "round", "round": 1})
        journal.close()
        header, records = SoakJournal.read(tmp_path / "j.jsonl")
        assert header["run_key"] == "k"
        assert [r["round"] for r in records] == [0, 1]

    def test_unterminated_tail_is_truncated_on_resume(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SoakJournal(path)
        journal.open_fresh({"run_key": "k"})
        journal.append({"type": "round", "round": 0})
        journal.close()
        good = path.read_bytes()
        with open(path, "ab") as handle:
            handle.write(b'{"type": "round", "rou')  # torn mid-write
        header, records = SoakJournal(path).open_resume()
        assert header["run_key"] == "k"
        assert len(records) == 1
        assert path.read_bytes() == good

    def test_torn_terminated_line_is_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SoakJournal(path)
        journal.open_fresh({"run_key": "k"})
        journal.append({"type": "round", "round": 0})
        journal.close()
        good = path.read_bytes()
        with open(path, "ab") as handle:
            handle.write(b'{"half": \n')
        _header, records = SoakJournal(path).open_resume()
        assert len(records) == 1
        assert path.read_bytes() == good

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SoakJournal(path)
        journal.open_fresh({"run_key": "k"})
        journal.append({"type": "round", "round": 0})
        journal.append({"type": "round", "round": 1})
        journal.close()
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = b'{"broken\n'
        path.write_bytes(b"".join(lines))
        with pytest.raises(JournalCorrupt):
            SoakJournal(path).open_resume()

    def test_missing_file_resumes_fresh(self, tmp_path):
        header, records = SoakJournal(tmp_path / "nope.jsonl") \
            .open_resume()
        assert header is None and records == []

    def test_append_before_open_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            SoakJournal(tmp_path / "j.jsonl").append({})


class TestSoakCheckpoint:
    def test_save_load_round_trip(self, tmp_path):
        checkpoint = SoakCheckpoint(tmp_path / "c.json")
        checkpoint.save("key", {"round": 3, "seq": 60})
        assert checkpoint.load("key") == {"round": 3, "seq": 60}

    def test_wrong_run_key_or_corruption_yields_none(self, tmp_path):
        path = tmp_path / "c.json"
        checkpoint = SoakCheckpoint(path)
        checkpoint.save("key", {"round": 3})
        assert checkpoint.load("other") is None
        path.write_text("{torn", encoding="utf-8")
        assert checkpoint.load("key") is None
        assert SoakCheckpoint(tmp_path / "nope.json").load("key") is None


class TestRunSoak:
    def test_stop_on_max_faults(self, tmp_path):
        result = run_soak(small_soak(),
                          journal_path=tmp_path / "j.jsonl",
                          max_faults=40)
        assert result.stop_reason == "max_faults"
        assert result.total_faults >= 40
        assert result.rounds == 2

    def test_stop_on_target_ci_width(self, tmp_path):
        result = run_soak(small_soak(),
                          journal_path=tmp_path / "j.jsonl",
                          target_ci_width=1.5, max_rounds=50)
        # Width <= 1.5 is vacuous: satisfied after round boundaries
        # are first checked, i.e. immediately.
        assert result.stop_reason == "target_ci_width"
        assert result.rounds == 0

    def test_resume_is_byte_identical(self, tmp_path):
        soak = small_soak()
        run_soak(soak, journal_path=tmp_path / "a.jsonl",
                 checkpoint_path=tmp_path / "a.json", max_rounds=2)
        run_soak(soak, journal_path=tmp_path / "a.jsonl",
                 checkpoint_path=tmp_path / "a.json", resume=True,
                 max_rounds=5)
        run_soak(soak, journal_path=tmp_path / "b.jsonl",
                 max_rounds=5)
        assert (tmp_path / "a.jsonl").read_bytes() == \
            (tmp_path / "b.jsonl").read_bytes()

    def test_resume_without_checkpoint_rebuilds_from_journal(
            self, tmp_path):
        soak = small_soak()
        run_soak(soak, journal_path=tmp_path / "a.jsonl", max_rounds=3)
        result = run_soak(soak, journal_path=tmp_path / "a.jsonl",
                          resume=True, max_rounds=3)
        # Already at the stop condition: nothing re-runs, state intact.
        assert result.rounds == 3
        assert result.faults_evaluated == 0
        assert result.total_faults == 60

    def test_stale_checkpoint_loses_to_the_journal(self, tmp_path):
        soak = small_soak()
        journal_path = tmp_path / "a.jsonl"
        checkpoint_path = tmp_path / "a.json"
        run_soak(soak, journal_path=journal_path,
                 checkpoint_path=checkpoint_path, max_rounds=3)
        # Truncate the journal's last record: the checkpoint now
        # covers more rounds than the journal holds.
        lines = journal_path.read_bytes().splitlines(keepends=True)
        journal_path.write_bytes(b"".join(lines[:-1]))
        result = run_soak(soak, journal_path=journal_path,
                          checkpoint_path=checkpoint_path,
                          resume=True, max_rounds=3)
        # Round 2 re-ran identically; the journal matches a clean run.
        run_soak(soak, journal_path=tmp_path / "ref.jsonl",
                 max_rounds=3)
        assert journal_path.read_bytes() == \
            (tmp_path / "ref.jsonl").read_bytes()
        assert result.rounds == 3

    def test_config_change_rejects_the_journal(self, tmp_path):
        run_soak(small_soak(), journal_path=tmp_path / "j.jsonl",
                 max_rounds=1)
        other = small_soak(faults_per_round=21)
        with pytest.raises(ConfigurationError):
            run_soak(other, journal_path=tmp_path / "j.jsonl",
                     resume=True, max_rounds=2)

    def test_state_from_journal_matches_driver_accounting(
            self, tmp_path):
        soak = small_soak()
        result = run_soak(soak, journal_path=tmp_path / "j.jsonl",
                          max_rounds=3)
        _header, records = SoakJournal.read(tmp_path / "j.jsonl")
        state = soak_state_from_journal(soak, records)
        assert state["round"] == result.rounds
        assert state["seq"] == result.total_faults
        total = sum(sum(row.values())
                    for row in state["estimator"].values())
        assert total == result.total_faults

    def test_drain_requested_before_first_round(self, tmp_path):
        from repro.exec import SweepRunner

        runner = SweepRunner()
        runner.request_drain()
        result = run_soak(small_soak(),
                          journal_path=tmp_path / "j.jsonl",
                          runner=runner, max_rounds=5)
        assert result.drained and result.stop_reason == "drained"
        assert result.rounds == 0
        runner.close()

    def test_adaptive_narrows_widest_ci_at_least_as_fast(
            self, tmp_path):
        """On a fixed budget the adaptive arm's widest CI is no wider
        than uniform's (the perf gate checks strict improvement on a
        bigger budget; this pins the invariant cheaply)."""
        budget_rounds = 6
        adaptive = run_soak(
            small_soak(), journal_path=tmp_path / "a.jsonl",
            max_rounds=budget_rounds)
        uniform = run_soak(
            small_soak(adaptive=False),
            journal_path=tmp_path / "u.jsonl",
            max_rounds=budget_rounds)
        assert adaptive.total_faults == uniform.total_faults
        assert adaptive.widest["ci_width"] <= \
            uniform.widest["ci_width"] + 1e-12


class TestSoakConfig:
    def test_run_key_tracks_sampling_semantics_only(self):
        base = small_soak()
        assert base.run_key() == small_soak().run_key()
        assert small_soak(faults_per_round=21).run_key() != \
            base.run_key()
        assert small_soak(adaptive=False).run_key() != base.run_key()
        # Operational knobs don't change the stream identity.
        assert small_soak(ring_capacity=8).run_key() == base.run_key()
        assert small_soak(checkpoint_every_rounds=5).run_key() == \
            base.run_key()

    def test_params_round_trip(self):
        soak = small_soak(min_weight=0.05, adaptive=False)
        clone = SoakConfig.from_params(
            json.loads(json.dumps(soak.to_params())))
        assert clone == soak
