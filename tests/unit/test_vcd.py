"""Unit tests for VCD export."""

import pytest

from repro.circuit.logic import Logic
from repro.errors import ConfigurationError
from repro.sim.clocks import ClockGenerator
from repro.sim.engine import Simulator
from repro.sim.vcd import dump_vcd, write_vcd
from repro.sim.waveform import Waveform, WaveformRecorder


def make_waveform():
    wave = Waveform("sig", initial=Logic.ZERO)
    wave.record(10, Logic.ONE)
    wave.record(30, Logic.ZERO)
    return {"sig": wave}


class TestDump:
    def test_header(self):
        text = dump_vcd(make_waveform())
        assert "$timescale 1ps $end" in text
        assert "$var wire 1 ! sig $end" in text
        assert "$enddefinitions $end" in text

    def test_initial_values_in_dumpvars(self):
        text = dump_vcd(make_waveform())
        dumpvars = text.split("$dumpvars")[1].split("$end")[0]
        assert "0!" in dumpvars

    def test_changes_in_time_order(self):
        text = dump_vcd(make_waveform())
        body = text.split("$enddefinitions $end")[1]
        assert body.index("#10") < body.index("#30")
        assert "1!" in body and "0!" in body

    def test_x_values(self):
        wave = Waveform("s", initial=Logic.X)
        wave.record(5, Logic.ONE)
        text = dump_vcd({"s": wave})
        assert "x!" in text

    def test_multiple_signals_share_timestamps(self):
        a = Waveform("a", initial=Logic.ZERO)
        b = Waveform("b", initial=Logic.ZERO)
        a.record(10, Logic.ONE)
        b.record(10, Logic.ONE)
        text = dump_vcd({"a": a, "b": b})
        assert text.count("#10") == 1

    def test_end_ps_extends(self):
        text = dump_vcd(make_waveform(), end_ps=500)
        assert "#500" in text

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            dump_vcd({})

    def test_recorder_accepted(self):
        sim = Simulator()
        ClockGenerator(sim, "clk", 100)
        recorder = WaveformRecorder(["clk"])
        recorder.attach(sim)
        sim.run(250)
        text = dump_vcd(recorder)
        assert "clk" in text
        assert "#100" in text


class TestWrite:
    def test_round_trip_to_file(self, tmp_path):
        path = tmp_path / "out.vcd"
        write_vcd(str(path), make_waveform())
        assert path.read_text().startswith("$timescale")


class TestIdentifiers:
    def test_many_signals_get_unique_ids(self):
        waves = {}
        for index in range(200):
            wave = Waveform(f"s{index}", initial=Logic.ZERO)
            wave.record(1, Logic.ONE)
            waves[f"s{index}"] = wave
        text = dump_vcd(waves)
        ids = [line.split()[3] for line in text.splitlines()
               if line.startswith("$var")]
        assert len(ids) == len(set(ids)) == 200
