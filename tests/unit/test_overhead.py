"""Unit tests for deployment overhead computation (Fig. 8 machinery)."""

import pytest

from repro.errors import ConfigurationError
from repro.power.overhead import deployment_overhead
from repro.timing.graph import TimingGraph


@pytest.fixture
def graph():
    g = TimingGraph("t", 1000)
    for index in range(20):
        g.add_ff(f"f{index}")
    # Half the FFs end a critical path; two of those also start one.
    for index in range(10):
        g.add_edge(f"f{index}", f"f{index + 10}", 950)
    g.add_edge("f10", "f11", 940)
    g.add_edge("f11", "f12", 930)
    return g


class TestOverheadAccounting:
    def test_replaced_count_matches_endpoints(self, graph):
        over = deployment_overhead(graph, percent_checking=10.0, style="ff")
        assert over.num_replaced == len(graph.critical_endpoints(10.0))

    def test_ff_style_includes_relay(self, graph):
        over = deployment_overhead(graph, percent_checking=10.0, style="ff")
        assert over.relay is not None
        assert over.relay_area_overhead_percent > 0

    def test_latch_style_has_no_relay(self, graph):
        over = deployment_overhead(graph, percent_checking=10.0,
                                   style="latch")
        assert over.relay is None
        assert over.relay_area_overhead_percent == 0.0

    def test_latch_power_cheaper_than_ff(self, graph):
        ff = deployment_overhead(graph, percent_checking=10.0, style="ff")
        latch = deployment_overhead(graph, percent_checking=10.0,
                                    style="latch")
        assert latch.power_overhead_percent < ff.power_overhead_percent

    def test_power_overhead_hand_computed(self, graph):
        over = deployment_overhead(graph, percent_checking=10.0,
                                   style="latch")
        model_delta = over.element_delta.total_power
        expected = 100.0 * model_delta / over.baseline.total_power
        assert over.power_overhead_percent == pytest.approx(expected)

    def test_hold_buffers_default_off(self, graph):
        over = deployment_overhead(graph, percent_checking=10.0, style="ff")
        assert over.hold_buffers == 0
        assert over.hold_delta.total_power == 0

    def test_hold_buffers_priced_when_enabled(self, graph):
        over = deployment_overhead(graph, percent_checking=10.0,
                                   style="ff", include_hold_buffers=True)
        assert over.hold_buffers > 0
        assert over.extra_power > deployment_overhead(
            graph, percent_checking=10.0, style="ff").extra_power

    def test_replaced_fraction(self, graph):
        over = deployment_overhead(graph, percent_checking=10.0, style="ff")
        assert over.replaced_fraction == pytest.approx(
            over.num_replaced / 20)

    def test_style_validation(self, graph):
        with pytest.raises(ConfigurationError):
            deployment_overhead(graph, percent_checking=10.0, style="bogus")
