"""Graceful drain: in-process SweepDrained semantics and the CLI's
SIGTERM handler (checkpoint + journal flushed before exit 143)."""

import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.exec import (
    SweepCheckpoint,
    SweepDrained,
    SweepRunner,
    expand_grid,
)
from repro.soak import SoakJournal

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
SQUARE = "repro.exec.testing:square_task"


class TestSweepDrained:
    def test_drain_stops_dispatch_but_keeps_finished_work(
            self, tmp_path):
        tasks = expand_grid(SQUARE, {"x": list(range(8))}, root_seed=3)
        path = tmp_path / "cp.json"
        runner = SweepRunner(checkpoint=SweepCheckpoint(path, every=1))
        record = runner.telemetry.record_task

        def drain_after_two(outcome):
            record(outcome)
            if outcome.task.index == 1:
                runner.request_drain()

        runner.telemetry.record_task = drain_after_two
        with pytest.raises(SweepDrained) as excinfo:
            runner.run(tasks)
        result = excinfo.value.result
        assert result.summary["drained"] is True
        assert 0 < len(result.outcomes) < len(tasks)
        # Every completed task made it to the checkpoint...
        runner.close()
        resumed = SweepRunner(
            checkpoint=SweepCheckpoint(path, resume=True)).run(tasks)
        # ...and the resume finishes the grid without recomputing them.
        assert resumed.summary["resumed_tasks"] == len(result.outcomes)
        assert resumed.values == [x * x for x in range(8)]
        resumed_flags = [o.resumed for o in resumed.outcomes]
        assert sum(resumed_flags) == len(result.outcomes)

    def test_drain_flag_is_sticky_until_cleared(self):
        tasks = expand_grid(SQUARE, {"x": [1, 2]}, root_seed=3)
        runner = SweepRunner()
        runner.request_drain()
        with pytest.raises(SweepDrained) as excinfo:
            runner.run(tasks)
        assert excinfo.value.result.outcomes == []
        with pytest.raises(SweepDrained):
            runner.run(tasks)  # still draining
        runner.clear_drain()
        assert runner.run(tasks).values == [1, 4]
        runner.close()


def _soak_cli(journal: pathlib.Path, *extra: str) -> list[str]:
    return [
        sys.executable, "-m", "repro.cli", "soak",
        "--target", "graph", "--scheme", "timber-ff",
        "--cycles", "300", "--chunk", "10",
        "--faults-per-round", "40", "--magnitude-bins", "2",
        "--seed", "7", "--journal", str(journal), "--quiet", *extra,
    ]


def _env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (f"{src}{os.pathsep}{existing}"
                         if existing else src)
    return env


class TestCliSigterm:
    def test_sigterm_drains_flushes_and_exits_143(self, tmp_path):
        """An open-ended soak, SIGTERMed mid-stream, must exit with
        128+SIGTERM, leave a parseable journal, and resume cleanly."""
        journal = tmp_path / "soak.jsonl"
        proc = subprocess.Popen(
            _soak_cli(journal),  # no stop condition: open-ended
            cwd=REPO_ROOT, env=_env(),
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE)
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if journal.exists() and len(
                        journal.read_bytes().splitlines()) >= 3:
                    break  # header + >= 2 round records on disk
                if proc.poll() is not None:
                    pytest.fail("open-ended soak exited on its own: "
                                + proc.stderr.read().decode())
                time.sleep(0.05)
            else:
                pytest.fail("soak never journaled a round")
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=120.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        stderr = proc.stderr.read().decode("utf-8", errors="replace")
        assert proc.returncode == 128 + signal.SIGTERM, stderr
        assert "drained" in stderr

        header, records = SoakJournal.read(journal)
        assert header is not None and records
        rounds_before = len(records)

        # The drained journal is a valid prefix: resume extends it.
        resume = subprocess.run(
            _soak_cli(journal, "--resume",
                      "--rounds", str(rounds_before + 2)),
            cwd=REPO_ROOT, env=_env(), capture_output=True)
        assert resume.returncode == 0, resume.stderr.decode()
        _header, extended = SoakJournal.read(journal)
        assert len(extended) == rounds_before + 2
        assert extended[:rounds_before] == records
