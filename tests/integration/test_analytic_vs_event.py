"""Integration: analytic capture semantics vs event-driven elements.

The cycle-level studies trust the pure functions in
:mod:`repro.core.masking`; the waveform studies trust the behavioural
elements in :mod:`repro.sequential`.  This suite pins them together: for
a sweep of latenesses and selects, the event-driven element must make
exactly the decision the analytic function predicts (masked or not,
flagged or not, correct output or stale).
"""

import pytest

from repro.circuit.logic import Logic
from repro.core.checking_period import CheckingPeriod
from repro.core.masking import timber_ff_capture, timber_latch_capture
from repro.sequential.timber_ff import TimberFlipFlop
from repro.sequential.timber_latch import TimberLatch
from repro.sim.clocks import ClockGenerator
from repro.sim.engine import Simulator

PERIOD = 1000
CP = CheckingPeriod.with_tb(PERIOD, 30)  # t = 100, 1 TB + 2 ED

#: Latenesses probing each interval, both boundaries, and failure.
LATENESSES = [-100, 40, 99, 101, 140, 201, 260, 299]
#: Keep clear of sampling apertures where analog behaviour is undefined.
APERTURE_PS = 12


def run_event_ff(lateness: int, select: int):
    sim = Simulator()
    ClockGenerator(sim, "clk", PERIOD)
    sim.set_initial("d", 0)
    ff = TimberFlipFlop(sim, name="f", d="d", clk="clk", q="q", err="e",
                        interval_ps=CP.interval_ps,
                        num_intervals=CP.num_intervals,
                        num_tb_intervals=CP.num_tb)
    ff.set_select(select)
    sim.drive("d", 1, PERIOD + lateness)
    sim.run(2 * PERIOD)
    return ff, sim


def run_event_latch(lateness: int):
    sim = Simulator()
    ClockGenerator(sim, "clk", PERIOD)
    sim.set_initial("d", 0)
    latch = TimberLatch(sim, name="l", d="d", clk="clk", q="q", err="e",
                        tb_ps=CP.tb_ps, checking_ps=CP.checking_ps)
    sim.drive("d", 1, PERIOD + lateness)
    sim.run(2 * PERIOD)
    return latch, sim


class TestTimberFFAgreement:
    @pytest.mark.parametrize("lateness", LATENESSES)
    @pytest.mark.parametrize("select", [0, 1, 2])
    def test_decision_matches(self, lateness, select):
        delta = (min(select, CP.num_intervals - 1) + 1) * CP.interval_ps
        if abs(lateness - delta) <= APERTURE_PS or \
                abs(lateness) <= APERTURE_PS:
            pytest.skip("inside a sampling aperture")
        analytic = timber_ff_capture(lateness, select, CP)
        ff, sim = run_event_ff(lateness, select)

        assert (ff.masked_count > 0) == analytic.masked
        assert (sim.value("e") is Logic.ONE) == analytic.flagged
        # Correct output iff the analytic model says state is correct
        # (the stimulus always eventually drives D to 1, so a correct
        # capture shows q == 1; a failed one holds the stale 0).
        expected_q = Logic.ONE if analytic.correct_state or lateness <= 0 \
            else Logic.ZERO
        assert sim.value("q") is expected_q

    @pytest.mark.parametrize("select", [0, 1, 2])
    def test_borrow_amount_matches(self, select):
        lateness = 40 + select * CP.interval_ps
        analytic = timber_ff_capture(lateness, select, CP)
        assert analytic.masked
        ff, _sim = run_event_ff(lateness, select)
        assert ff.events[0].borrowed_ps == analytic.borrowed_ps


class TestTimberLatchAgreement:
    @pytest.mark.parametrize("lateness", LATENESSES)
    def test_decision_matches(self, lateness):
        if min(abs(lateness - CP.tb_ps),
               abs(lateness - CP.checking_ps),
               abs(lateness)) <= APERTURE_PS:
            pytest.skip("inside a latch closing aperture")
        analytic = timber_latch_capture(lateness, CP)
        latch, sim = run_event_latch(lateness)

        borrowed = any(r.borrowed_ps > 0 for r in latch.records)
        assert borrowed == (analytic.masked and lateness > 0)
        assert (latch.flagged_count > 0) == analytic.flagged
        expected_q = Logic.ONE if analytic.correct_state or lateness <= 0 \
            else Logic.ZERO
        assert sim.value("q") is expected_q

    def test_borrow_is_exact_lateness(self):
        lateness = 170
        analytic = timber_latch_capture(lateness, CP)
        latch, _sim = run_event_latch(lateness)
        assert analytic.borrowed_ps == lateness
        assert latch.borrow_events[0].borrowed_ps == lateness
