"""Integration: structural (latch-level) vs behavioural TIMBER models.

The structural circuits of :mod:`repro.core.structural` and the
behavioural elements of :mod:`repro.sequential` must agree on every
observable decision — masked or not, flagged or not, and the final Q —
across a sweep of arrival times.  This is the reproduction's analogue of
validating the schematics against the architectural spec.
"""

import pytest

from repro.circuit.logic import Logic
from repro.core.structural import StructuralTimberFF, StructuralTimberLatch
from repro.sequential.timber_ff import TimberFlipFlop
from repro.sequential.timber_latch import TimberLatch
from repro.sim.clocks import ClockGenerator
from repro.sim.engine import Simulator

PERIOD = 1000
INTERVAL = 100
CHECK = 300

#: Arrival offsets (ps after the capture edge) spanning clean captures,
#: TB-interval errors, ED-interval errors, and missed arrivals.  Offsets
#: near interval boundaries are deliberately included.
ARRIVALS = [-200, 30, 60, 95, 105, 150, 195, 250, 290]


def run_behavioural_ff(arrival, select):
    sim = Simulator()
    ClockGenerator(sim, "clk", PERIOD)
    sim.set_initial("d", 0)
    ff = TimberFlipFlop(sim, name="f", d="d", clk="clk", q="q", err="e",
                        interval_ps=INTERVAL)
    ff.set_select(select)
    sim.drive("d", 1, PERIOD + arrival)
    sim.run(2 * PERIOD)
    return sim.value("q"), sim.value("e")


def run_structural_ff(arrival, select):
    sim = Simulator()
    ClockGenerator(sim, "clk", PERIOD)
    sim.set_initial("d", 0)
    ff = StructuralTimberFF(sim, name="f", d="d", clk="clk", q="q",
                            err="e", interval_ps=INTERVAL)
    ff.set_select(select)
    sim.drive("d", 1, PERIOD + arrival)
    sim.run(2 * PERIOD)
    return sim.value("q"), sim.value("e")


def run_behavioural_latch(arrival):
    sim = Simulator()
    ClockGenerator(sim, "clk", PERIOD)
    sim.set_initial("d", 0)
    TimberLatch(sim, name="l", d="d", clk="clk", q="q", err="e",
                tb_ps=INTERVAL, checking_ps=CHECK)
    sim.drive("d", 1, PERIOD + arrival)
    sim.run(2 * PERIOD)
    return sim.value("q"), sim.value("e")


def run_structural_latch(arrival):
    sim = Simulator()
    ClockGenerator(sim, "clk", PERIOD)
    sim.set_initial("d", 0)
    StructuralTimberLatch(sim, name="l", d="d", clk="clk", q="q", err="e",
                          tb_ps=INTERVAL, checking_ps=CHECK)
    sim.drive("d", 1, PERIOD + arrival)
    sim.run(2 * PERIOD)
    return sim.value("q"), sim.value("e")


class TestFFAgreement:
    @pytest.mark.parametrize("arrival", ARRIVALS)
    @pytest.mark.parametrize("select", [0, 1, 2])
    def test_q_and_flag_agree(self, arrival, select):
        # Skip offsets that sit inside a latch's sampling aperture where
        # analog behaviour is genuinely undefined (within 10 ps of the
        # M1 sampling instant for this select).
        delta = (select + 1) * INTERVAL
        if abs(arrival - delta) <= 10:
            pytest.skip("inside the M1 sampling aperture")
        behavioural = run_behavioural_ff(arrival, select)
        structural = run_structural_ff(arrival, select)
        assert behavioural == structural

    def test_select_out_agrees_after_error(self):
        sim_b = Simulator()
        ClockGenerator(sim_b, "clk", PERIOD)
        sim_b.set_initial("d", 0)
        behavioural = TimberFlipFlop(sim_b, name="f", d="d", clk="clk",
                                     q="q", err="e", interval_ps=INTERVAL)
        sim_b.drive("d", 1, PERIOD + 60)
        sim_b.run(PERIOD + PERIOD // 2 + 60)

        sim_s = Simulator()
        ClockGenerator(sim_s, "clk", PERIOD)
        sim_s.set_initial("d", 0)
        structural = StructuralTimberFF(sim_s, name="f", d="d", clk="clk",
                                        q="q", err="e",
                                        interval_ps=INTERVAL)
        sim_s.drive("d", 1, PERIOD + 60)
        sim_s.run(PERIOD + PERIOD // 2 + 60)

        assert behavioural.select_out == structural.select_out == 1


class TestLatchAgreement:
    @pytest.mark.parametrize("arrival", ARRIVALS)
    def test_q_and_flag_agree(self, arrival):
        # The latch closes its master at +INTERVAL and slave at +CHECK;
        # avoid the 10 ps apertures around both.
        if min(abs(arrival - INTERVAL), abs(arrival - CHECK)) <= 10:
            pytest.skip("inside a latch closing aperture")
        behavioural = run_behavioural_latch(arrival)
        structural = run_structural_latch(arrival)
        assert behavioural == structural

    @pytest.mark.parametrize("arrival", [60, 200])
    def test_masked_value_correct_both_models(self, arrival):
        for runner in (run_behavioural_latch, run_structural_latch):
            q, _err = runner(arrival)
            assert q is Logic.ONE
