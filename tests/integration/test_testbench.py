"""Integration: TIMBER elements deployed on a real netlist.

Builds the event-driven testbench over a generated netlist, drives
clean and late stimuli through the actual gates, and checks that the
structural deployment masks/flag exactly as the analytic model says.
"""

import pytest

from repro.circuit.generate import inverter_chain, random_stage
from repro.circuit.logic import Logic
from repro.core.checking_period import CheckingPeriod
from repro.core.testbench import build_timber_testbench
from repro.errors import ConfigurationError

PERIOD = 4000  # roomy clock: the chain delay is ~240 ps
CP = CheckingPeriod.with_tb(PERIOD, 30)


@pytest.fixture
def chain_bench():
    return build_timber_testbench(inverter_chain(20), CP, style="ff")


class TestCleanOperation:
    def test_clean_stimulus_captured(self, chain_bench):
        bench = chain_bench
        bench.apply_stimulus({"in": 1}, at_cycle=2)
        bench.run_cycles(3)
        capture = bench.netlist.capture_nets[0]
        assert bench.output_value(capture) is Logic.ONE
        assert bench.flagged_elements() == set()

    def test_no_spurious_masking(self, chain_bench):
        bench = chain_bench
        bench.apply_stimulus({"in": 1}, at_cycle=2)
        bench.run_cycles(4)
        assert all(count == 0
                   for count in bench.masked_counts().values())


class TestTimingErrors:
    @pytest.mark.parametrize("style", ["ff", "latch"])
    def test_late_arrival_masked(self, style):
        bench = build_timber_testbench(inverter_chain(20), CP,
                                       style=style)
        capture = bench.netlist.capture_nets[0]
        # Lateness inside the TB interval: masked, not flagged.
        bench.inject_late_stimulus("in", 1, at_cycle=2,
                                   lateness_ps=CP.interval_ps // 2)
        bench.run_cycles(3)
        assert bench.output_value(capture) is Logic.ONE
        assert bench.flagged_elements() == set()
        assert bench.masked_counts()[capture] >= 1

    def test_ed_arrival_flagged(self):
        bench = build_timber_testbench(inverter_chain(20), CP,
                                       style="latch")
        capture = bench.netlist.capture_nets[0]
        bench.inject_late_stimulus(
            "in", 1, at_cycle=2,
            lateness_ps=CP.tb_ps + CP.interval_ps // 2)
        bench.run_cycles(3)
        assert bench.output_value(capture) is Logic.ONE
        assert capture in bench.flagged_elements()


class TestMultiOutputNetlist:
    @pytest.fixture
    def stage_bench(self):
        netlist = random_stage(num_inputs=6, num_outputs=4, depth=5,
                               width=8, seed=17)
        return build_timber_testbench(netlist, CP, style="ff")

    def test_all_outputs_get_elements(self, stage_bench):
        assert set(stage_bench.elements) == \
            set(stage_bench.netlist.capture_nets)

    def test_relay_wired_for_ff_style(self, stage_bench):
        assert stage_bench.relay is not None
        assert stage_bench.relay.connections

    def test_clean_vectors_propagate(self, stage_bench):
        bench = stage_bench
        bench.apply_stimulus({net: 1 for net in bench.launch_nets},
                             at_cycle=2)
        bench.run_cycles(3)
        for capture in bench.netlist.capture_nets:
            assert bench.output_value(capture) in (Logic.ZERO, Logic.ONE)
        assert bench.flagged_elements() == set()


class TestValidation:
    def test_unknown_launch_net_rejected(self, chain_bench):
        with pytest.raises(ConfigurationError):
            chain_bench.apply_stimulus({"nope": 1}, at_cycle=2)

    def test_bad_style_rejected(self):
        with pytest.raises(ConfigurationError):
            build_timber_testbench(inverter_chain(3), CP, style="bogus")

    def test_zero_cycles_rejected(self, chain_bench):
        with pytest.raises(ConfigurationError):
            chain_bench.run_cycles(0)
