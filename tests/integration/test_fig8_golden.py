"""Golden test: the criticality index must not change Fig. 8 output.

``tests/golden/fig8_rows.json`` was captured from ``fig8_experiment``
*before* ``CriticalityIndex`` replaced the per-query edge scans (serial
runner, no cache, default points, seed 2010).  The index is a pure
performance structure — every row must match the pre-index output
exactly, field for field.
"""

import dataclasses
import json
import pathlib

from repro.analysis.experiments import fig8_experiment
from repro.exec.runner import SweepRunner

GOLDEN = pathlib.Path(__file__).parent.parent / "golden" / "fig8_rows.json"


def test_fig8_rows_match_pre_index_golden():
    golden = json.loads(GOLDEN.read_text())
    rows = fig8_experiment(runner=SweepRunner(workers=1, cache=None))
    assert [dataclasses.asdict(row) for row in rows] == golden["rows"]
