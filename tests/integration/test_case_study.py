"""Integration: the Sec. 6 case study end-to-end.

Generates the three synthetic processor performance points, deploys
TIMBER at every checking period the paper studies, and checks the
qualitative claims of Figs. 1 and 8 hold simultaneously.
"""

import pytest

from repro.core.architecture import TimberDesign, TimberStyle
from repro.processor.generator import generate_processor
from repro.processor.perfpoints import PERFORMANCE_POINTS
from repro.timing.distribution import distribution_sweep

CHECKING = (10.0, 20.0, 30.0, 40.0)


@pytest.fixture(scope="module")
def graphs():
    return {p.name: generate_processor(p) for p in PERFORMANCE_POINTS}


class TestFig1Claims:
    def test_endpoint_fraction_grows_with_performance(self, graphs):
        for percent in CHECKING:
            fractions = [
                len(graphs[name].critical_endpoints(percent))
                / graphs[name].num_ffs
                for name in ("low", "medium", "high")
            ]
            assert fractions == sorted(fractions)

    def test_through_ffs_always_minority_at_operating_thresholds(
            self, graphs):
        for name, graph in graphs.items():
            for percent in (10.0, 20.0):
                endpoints = graph.critical_endpoints(percent)
                through = graph.critical_through_ffs(percent)
                if endpoints:
                    assert len(through) / len(endpoints) < 0.5


class TestFig8Claims:
    @pytest.fixture(scope="class")
    def designs(self, graphs):
        result = {}
        for name, graph in graphs.items():
            for percent in CHECKING:
                for style in (TimberStyle.FLIP_FLOP, TimberStyle.LATCH):
                    result[(name, percent, style)] = TimberDesign(
                        graph=graph, style=style,
                        percent_checking=percent)
        return result

    def test_relay_always_meets_half_cycle_budget(self, designs):
        for design in designs.values():
            assert design.relay_meets_timing()

    def test_relay_slack_is_large(self, designs):
        # Paper: "A large timing slack is available because error relay
        # has to be performed only from a small number of TIMBER FFs."
        for (name, percent, style), design in designs.items():
            if style is TimberStyle.FLIP_FLOP:
                cost = design.relay()
                assert cost.timing_slack_percent(
                    design.graph.period_ps) > 50.0

    def test_relay_area_overhead_small(self, designs):
        for (name, percent, style), design in designs.items():
            if style is TimberStyle.FLIP_FLOP:
                over = design.overhead()
                assert over.relay_area_overhead_percent < 20.0

    def test_power_overhead_monotone_in_checking_period(self, designs):
        for name in ("low", "medium", "high"):
            for style in (TimberStyle.FLIP_FLOP, TimberStyle.LATCH):
                series = [
                    designs[(name, percent, style)].overhead()
                    .power_overhead_percent
                    for percent in CHECKING
                ]
                assert series == sorted(series)

    def test_latch_always_cheaper_than_ff(self, designs):
        for name in ("low", "medium", "high"):
            for percent in CHECKING:
                ff = designs[(name, percent, TimberStyle.FLIP_FLOP)]
                latch = designs[(name, percent, TimberStyle.LATCH)]
                assert latch.overhead().power_overhead_percent < \
                    ff.overhead().power_overhead_percent

    def test_overheads_in_low_double_digit_percent_range(self, designs):
        # The paper reports "very low overhead"; our absolute scale is
        # parametric, but overheads must stay in a sane band.
        for design in designs.values():
            over = design.overhead()
            assert 0 < over.power_overhead_percent < 35.0

    def test_margin_trade_off_with_vs_without_tb(self, graphs):
        for name, graph in graphs.items():
            with_tb = TimberDesign(graph=graph,
                                   style=TimberStyle.FLIP_FLOP,
                                   percent_checking=30.0,
                                   with_tb_interval=True)
            without = TimberDesign(graph=graph,
                                   style=TimberStyle.FLIP_FLOP,
                                   percent_checking=30.0,
                                   with_tb_interval=False)
            # Same power (same replaced FFs), less margin with TB.
            assert with_tb.overhead().power_overhead_percent == \
                pytest.approx(without.overhead().power_overhead_percent)
            assert with_tb.recovered_margin_percent < \
                without.recovered_margin_percent


class TestDistributionSweepIntegration:
    def test_sweep_matches_direct_queries(self, graphs):
        graph = graphs["medium"]
        for dist in distribution_sweep(graph):
            endpoints = graph.critical_endpoints(dist.percent_threshold)
            assert dist.num_endpoints == len(endpoints)
