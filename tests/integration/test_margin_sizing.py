"""Integration: empirical margin sizing with statistical STA.

Closes the loop the paper assumes at design time: measure the dynamic
violation distribution of a netlist (SSTA), size the checking period so
the recovered margin covers it, deploy TIMBER, and verify in event-
driven simulation that violations of the measured magnitude are masked.
"""

import pytest

from repro.circuit.generate import inverter_chain
from repro.core.checking_period import CheckingPeriod
from repro.sequential.timber_latch import TimberLatch
from repro.sim.clocks import ClockGenerator
from repro.sim.engine import Simulator
from repro.timing.ssta import run_ssta
from repro.variability import (
    CompositeVariation,
    LocalVariation,
    VoltageDroopVariation,
)


class TestMarginSizing:
    @pytest.fixture(scope="class")
    def sized(self):
        # A 20-inverter path: nominal arrival 20*12 + 45 = 285 ps.
        chain = inverter_chain(20)
        period = 320  # deadline 290: tight but meets nominal timing
        # Chip-wide droops are what actually pushes a whole path past
        # the edge; per-gate jitter averages out over a 20-gate cone.
        variability = CompositeVariation([
            LocalVariation(sigma=0.01, max_factor=1.03, seed=13),
            VoltageDroopVariation(event_probability=0.05,
                                  amplitude=0.06, amplitude_jitter=0.0,
                                  duration_cycles=4, seed=14),
        ])
        ssta = run_ssta(chain, period, variability, trials=500)
        required = ssta.required_margin_ps(coverage=1.0)
        return chain, period, variability, ssta, required

    def test_ssta_observes_violations(self, sized):
        _chain, _period, _var, ssta, required = sized
        assert ssta.any_violation_probability > 0
        assert required > 0

    def test_checking_period_sized_from_measurement(self, sized):
        _chain, period, _var, _ssta, required = sized
        # Choose the smallest studied checking period whose recovered
        # margin covers the measured worst lateness.
        for percent in (10.0, 20.0, 30.0, 40.0):
            cp = CheckingPeriod.with_tb(period, percent)
            if cp.recovered_margin_ps >= required:
                break
        else:
            pytest.fail("no studied checking period covers the margin")
        assert cp.recovered_margin_ps >= required

    def test_deployed_latch_masks_measured_violations(self, sized):
        chain, period, _var, ssta, required = sized
        cp = next(
            CheckingPeriod.with_tb(period, percent)
            for percent in (10.0, 20.0, 30.0, 40.0)
            if CheckingPeriod.with_tb(period, percent)
            .recovered_margin_ps >= required
        )
        # Event-driven check: drive a transition that lands exactly at
        # the worst measured lateness; the TIMBER latch must mask it.
        sim = Simulator()
        ClockGenerator(sim, "clk", period)
        sim.set_initial("d", 0)
        latch = TimberLatch(sim, name="l", d="d", clk="clk", q="q",
                            err="err", tb_ps=cp.tb_ps,
                            checking_ps=cp.checking_ps)
        sim.drive("d", 1, period + required)
        sim.run(2 * period)
        assert str(sim.value("q")) == "1"
        record = latch.records[-1]
        assert record.borrowed_ps == required

    def test_undersized_margin_would_fail(self, sized):
        _chain, period, _var, _ssta, required = sized
        tiny = CheckingPeriod.with_tb(period, 10.0)
        if tiny.checking_ps >= required:
            pytest.skip("10% checking already covers this design")
        sim = Simulator()
        ClockGenerator(sim, "clk", period)
        sim.set_initial("d", 0)
        latch = TimberLatch(sim, name="l", d="d", clk="clk", q="q",
                            err="err", tb_ps=tiny.tb_ps,
                            checking_ps=tiny.checking_ps)
        sim.drive("d", 1, period + required)
        sim.run(2 * period)
        assert str(sim.value("q")) == "0"  # slave closed too early
