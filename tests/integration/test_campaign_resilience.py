"""Integration: the paper-scale fault campaign and its crash tolerance.

Two acceptance bars from the campaign engine ride here:

* A seeded 1000-fault campaign against the five-stage pipeline
  reproduces the paper's qualitative claim — the plain design lets
  every sensitized timing error escape, while TIMBER masks most of
  them silently (TB interval) or relays them across cycles, with the
  coverage report keyed to the recovered margin ``t = c/k``.
* A campaign interrupted mid-sweep and resumed from its checkpoint
  produces byte-identical results to an uninterrupted run.
"""

import json

import pytest

from repro.campaign import (
    BENIGN,
    ESCAPED,
    MASKED_TB,
    RELAYED,
    CampaignConfig,
    run_campaign,
)
from repro.exec import SweepCheckpoint, SweepRunner
from repro.exec.cache import encode_result


def _encoded(result) -> str:
    return json.dumps(encode_result(result.outcomes), sort_keys=True)


class TestPaperClaim:
    """Plain escapes; TIMBER masks and relays.  1000 faults, seeded."""

    @pytest.fixture(scope="class")
    def results(self):
        return {
            scheme: run_campaign(CampaignConfig(scheme=scheme))
            for scheme in ("plain", "timber-ff")
        }

    def test_campaign_is_paper_scale(self, results):
        for result in results.values():
            assert result.config.num_faults >= 1000
            assert len(result.outcomes) == result.config.num_faults

    def test_plain_design_has_no_coverage(self, results):
        report = results["plain"].report
        assert report.coverage == 0.0
        assert report.counts[ESCAPED] > 0
        assert report.counts[MASKED_TB] == report.counts[RELAYED] == 0

    def test_timber_covers_most_violations(self, results):
        report = results["timber-ff"].report
        assert report.coverage > 0.5
        # Both TIMBER mechanisms contribute: silent time borrowing and
        # multi-cycle error relaying.
        assert report.counts[MASKED_TB] > 0
        assert report.counts[RELAYED] > 0

    def test_timber_escapes_strictly_fewer(self, results):
        assert results["timber-ff"].report.counts[ESCAPED] < \
            results["plain"].report.counts[ESCAPED]

    def test_same_faults_sensitized_under_both_schemes(self, results):
        # Benign counts agree: the improvement is attribution to the
        # scheme, not a different draw of the fault population.
        assert results["plain"].report.counts[BENIGN] == \
            results["timber-ff"].report.counts[BENIGN]

    def test_report_keyed_to_recovered_margin(self, results):
        for result in results.values():
            assert result.report.margin_ps == \
                result.config.checking_period.interval_ps
            assert result.report.checking_percent == \
                result.config.checking_percent


class TestCheckpointResume:
    """Kill-and-resume must be invisible in the results."""

    CONFIG = CampaignConfig(num_faults=150, num_cycles=500,
                            faults_per_task=15, seed=42)

    def test_resume_after_partial_run_byte_identical(self, tmp_path):
        reference = run_campaign(self.CONFIG)

        # Uninterrupted checkpointed run, then amputate half of the
        # completed records — the on-disk state of a run whose process
        # was killed mid-sweep (records flush incrementally, so a kill
        # leaves a valid prefix of the full checkpoint).
        path = tmp_path / "campaign.ckpt.json"
        run_campaign(self.CONFIG, runner=SweepRunner(
            checkpoint=SweepCheckpoint(path, every=1)))
        state = json.loads(path.read_text(encoding="utf-8"))
        completed = state["completed"]
        assert len(completed) == 10  # 150 faults / 15 per task
        for index in list(completed)[5:]:
            del completed[index]
        path.write_text(json.dumps(state), encoding="utf-8")

        resumed = run_campaign(self.CONFIG, runner=SweepRunner(
            checkpoint=SweepCheckpoint(path, resume=True)))
        assert resumed.summary["resumed_tasks"] == 5
        assert _encoded(resumed) == _encoded(reference)
        assert resumed.report == reference.report

    def test_full_resume_executes_nothing(self, tmp_path):
        path = tmp_path / "campaign.ckpt.json"
        first = run_campaign(self.CONFIG, runner=SweepRunner(
            checkpoint=SweepCheckpoint(path)))
        resumed = run_campaign(self.CONFIG, runner=SweepRunner(
            checkpoint=SweepCheckpoint(path, resume=True)))
        assert resumed.summary["resumed_tasks"] == 10
        # Nothing executed fresh: every task was replayed from the
        # checkpoint (events_processed reflects the recorded work).
        assert resumed.summary["cache_misses"] == 0
        assert _encoded(resumed) == _encoded(first)

    def test_checkpoint_rejects_different_campaign(self, tmp_path):
        path = tmp_path / "campaign.ckpt.json"
        run_campaign(self.CONFIG, runner=SweepRunner(
            checkpoint=SweepCheckpoint(path)))
        other = CampaignConfig(num_faults=150, num_cycles=500,
                               faults_per_task=15, seed=43)
        resumed = run_campaign(other, runner=SweepRunner(
            checkpoint=SweepCheckpoint(path, resume=True)))
        assert resumed.summary["resumed_tasks"] == 0
