"""Golden test: snapshot forking must not change campaign output.

``tests/golden/campaign_outcomes.json`` was captured with
``REPRO_CAMPAIGN_FULL_RUNS=1`` — every fault simulated from cycle 0
through the full-run reference functions, the executable spec the
forked evaluator must reproduce.  The forked path (the default) must
match the capture byte for byte: same outcomes, same capture events,
same coverage report.
"""

import json
import pathlib

import pytest

from repro.campaign import CampaignConfig, run_campaign
from repro.campaign.engine import FULL_RUNS_ENV
from repro.exec.cache import encode_result
from repro.kernels import HAVE_NUMPY

GOLDEN = (pathlib.Path(__file__).parent.parent / "golden"
          / "campaign_outcomes.json")

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="forked evaluation needs the vector kernels")


def _captures():
    return json.loads(GOLDEN.read_text())["captures"]


@pytest.mark.parametrize("capture", _captures(),
                         ids=lambda c: "{target}-{scheme}".format(
                             **c["config"]))
def test_forked_campaign_matches_full_run_golden(capture, monkeypatch):
    monkeypatch.delenv(FULL_RUNS_ENV, raising=False)
    result = run_campaign(CampaignConfig(**capture["config"]))
    assert encode_result(result.outcomes) == capture["outcomes"]
    assert encode_result(result.report) == capture["report"]
