"""Golden test: snapshot forking must not change campaign output.

``tests/golden/campaign_outcomes.json`` was captured with
``REPRO_CAMPAIGN_FULL_RUNS=1`` — every fault simulated from cycle 0
through the full-run reference functions, the executable spec the
snapshot-forked evaluators must reproduce.  Both derived paths — the
lane-batched default and the per-fault forked fallback
(``REPRO_CAMPAIGN_BATCH=0``) — must match the capture byte for byte:
same outcomes, same capture events, same coverage report.
"""

import json
import pathlib

import pytest

from repro.campaign import CampaignConfig, fault_runner, run_campaign
from repro.campaign.engine import (
    BATCH_ENV,
    FULL_RUNS_ENV,
    _BatchedEvaluator,
)
from repro.exec.cache import encode_result
from repro.kernels import HAVE_NUMPY

GOLDEN = (pathlib.Path(__file__).parent.parent / "golden"
          / "campaign_outcomes.json")

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="forked evaluation needs the vector kernels")


def _captures():
    return json.loads(GOLDEN.read_text())["captures"]


def _ids(capture):
    return "{target}-{scheme}".format(**capture["config"])


@pytest.mark.parametrize("capture", _captures(), ids=_ids)
def test_batched_campaign_matches_full_run_golden(capture, monkeypatch):
    monkeypatch.delenv(FULL_RUNS_ENV, raising=False)
    monkeypatch.delenv(BATCH_ENV, raising=False)
    config = CampaignConfig(**capture["config"])
    # The default evaluator is the lane-batched one: this golden pins
    # the batched path, not just "whatever fault_runner returns".
    if config.target != "netlist":
        assert isinstance(fault_runner(config), _BatchedEvaluator)
    result = run_campaign(config)
    assert encode_result(result.outcomes) == capture["outcomes"]
    assert encode_result(result.report) == capture["report"]


@pytest.mark.parametrize("capture", _captures(), ids=_ids)
def test_forked_campaign_matches_full_run_golden(capture, monkeypatch):
    monkeypatch.delenv(FULL_RUNS_ENV, raising=False)
    monkeypatch.setenv(BATCH_ENV, "0")
    result = run_campaign(CampaignConfig(**capture["config"]))
    assert encode_result(result.outcomes) == capture["outcomes"]
    assert encode_result(result.report) == capture["report"]
