"""Integration: full pipeline + controller + variability control loop."""

import pytest

from repro.core.checking_period import CheckingPeriod
from repro.pipeline.controller import CentralErrorController
from repro.pipeline.pipeline import PipelineSimulation
from repro.pipeline.schemes import (
    CanaryPolicy,
    PlainPolicy,
    RazorPolicy,
    TimberFFPolicy,
    TimberLatchPolicy,
)
from repro.pipeline.stage import PipelineStage
from repro.variability import (
    CompositeVariation,
    LocalVariation,
    TemperatureDriftVariation,
    VoltageDroopVariation,
)

PERIOD = 1000
NUM_STAGES = 5
NUM_CYCLES = 15_000


@pytest.fixture(scope="module")
def stages():
    return [
        PipelineStage(name=f"st{i}", critical_delay_ps=950,
                      typical_delay_ps=700, sensitization_prob=0.05,
                      seed=100 + i)
        for i in range(NUM_STAGES)
    ]


@pytest.fixture(scope="module")
def stress():
    """Local jitter + occasional 8% droops + slow thermal cycle.

    The combined worst case (1.03 * 1.08 * 1.02 on a 950 ps stage) stays
    inside the 10%-of-period margin a 30% checking period recovers per
    stage — the sizing rule of paper Sec. 4.
    """
    return CompositeVariation([
        LocalVariation(sigma=0.015, max_factor=1.03, seed=41),
        VoltageDroopVariation(event_probability=2e-3, amplitude=0.08,
                              amplitude_jitter=0.0, seed=42),
        TemperatureDriftVariation(amplitude=0.02, period_cycles=8000),
    ])


def run(policy, stages, variability, latency_ps=PERIOD):
    controller = CentralErrorController(
        period_ps=PERIOD, consolidation_latency_ps=latency_ps)
    sim = PipelineSimulation(stages, policy, period_ps=PERIOD,
                             controller=controller,
                             variability=variability)
    return sim.run(NUM_CYCLES), controller


class TestSchemeComparison:
    def test_plain_fails_under_stress(self, stages, stress):
        result, _ = run(PlainPolicy(NUM_STAGES), stages, stress)
        assert result.failed > 0

    def test_timber_ff_masks_everything(self, stages, stress):
        cp = CheckingPeriod.with_tb(PERIOD, 30)
        result, controller = run(TimberFFPolicy(NUM_STAGES, cp), stages,
                                 stress)
        assert result.failed == 0
        assert result.masked > 0
        # Single-stage errors are masked silently: only a fraction of
        # masked events reached the controller.
        assert result.masked_flagged < result.masked

    def test_timber_latch_masks_everything(self, stages, stress):
        cp = CheckingPeriod.with_tb(PERIOD, 30)
        result, _ = run(TimberLatchPolicy(NUM_STAGES, cp), stages, stress)
        assert result.failed == 0
        assert result.masked > 0

    def test_timber_throughput_near_unity(self, stages, stress):
        cp = CheckingPeriod.with_tb(PERIOD, 30)
        result, _ = run(TimberFFPolicy(NUM_STAGES, cp), stages, stress)
        assert result.throughput_factor > 0.99

    def test_razor_pays_replay(self, stages, stress):
        result, _ = run(
            RazorPolicy(NUM_STAGES, window_ps=300, replay_penalty=5),
            stages, stress)
        assert result.detected > 0
        assert result.replay_cycles > 0
        assert result.throughput_factor < 1.0

    def test_canary_predicts_but_recovers_no_margin(self, stages, stress):
        result, controller = run(CanaryPolicy(NUM_STAGES, guard_ps=300),
                                 stages, stress)
        assert result.predicted > 0
        # The standing guard band turns every near-critical cycle into a
        # slowdown request: throughput suffers far more than TIMBER.
        assert result.slow_cycles > 0

    def test_timber_beats_razor_and_canary_in_throughput(self, stages,
                                                         stress):
        cp = CheckingPeriod.with_tb(PERIOD, 30)
        timber, _ = run(TimberFFPolicy(NUM_STAGES, cp), stages, stress)
        razor, _ = run(RazorPolicy(NUM_STAGES, window_ps=300,
                                   replay_penalty=5), stages, stress)
        canary, _ = run(CanaryPolicy(NUM_STAGES, guard_ps=300), stages,
                        stress)
        assert timber.throughput_factor >= razor.throughput_factor
        assert timber.throughput_factor >= canary.throughput_factor


class TestControlLoop:
    def test_flags_trigger_slowdown_and_errors_subside(self, stages,
                                                       stress):
        cp = CheckingPeriod.without_tb(PERIOD, 30)  # flag immediately
        result, controller = run(TimberFFPolicy(NUM_STAGES, cp), stages,
                                 stress)
        assert controller.flags_received > 0
        assert result.slow_cycles > 0
        assert result.failed == 0

    def test_consolidation_budget_check(self, stages, stress):
        cp = CheckingPeriod.with_tb(PERIOD, 30)
        _, controller = run(TimberFFPolicy(NUM_STAGES, cp), stages,
                            stress, latency_ps=PERIOD)
        assert controller.latency_fits(cp)

    def test_deferred_flagging_reduces_controller_traffic(self, stages,
                                                          stress):
        with_tb = CheckingPeriod.with_tb(PERIOD, 30)
        without = CheckingPeriod.without_tb(PERIOD, 30)
        _, ctrl_deferred = run(TimberFFPolicy(NUM_STAGES, with_tb),
                               stages, stress)
        _, ctrl_immediate = run(TimberFFPolicy(NUM_STAGES, without),
                                stages, stress)
        # Deferring flags to multi-stage errors must strictly reduce the
        # number of flags the controller sees.
        assert ctrl_deferred.flags_received <= ctrl_immediate.flags_received
