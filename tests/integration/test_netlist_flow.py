"""Integration: gate-level netlist -> STA -> TIMBER deployment flow.

Exercises the full front-end: generate a netlist, pad its short paths
for the checking period, reduce it to a timing graph, and deploy TIMBER
— the flow a user would run on their own design.
"""

import pytest

from repro.circuit.generate import random_stage
from repro.core.architecture import TimberDesign, TimberStyle
from repro.core.checking_period import CheckingPeriod
from repro.timing.constraints import (
    apply_hold_padding,
    hold_padding_plan,
    min_delay_by_capture,
)
from repro.timing.paths import enumerate_paths
from repro.timing.sta import netlist_to_timing_graph, run_sta

PERIOD = 2000
HOLD = 15


@pytest.fixture
def netlist():
    return random_stage(num_inputs=12, num_outputs=10, depth=8, width=16,
                        seed=77)


class TestFullFlow:
    def test_design_meets_signoff(self, netlist):
        result = run_sta(netlist, PERIOD)
        assert result.meets_timing()

    def test_flow_produces_consistent_deployment(self, netlist):
        cp = CheckingPeriod.with_tb(PERIOD, 20)

        # 1. Hold-fix the short paths for the checking period.
        sta_before = run_sta(netlist, PERIOD)
        plan = hold_padding_plan(netlist, hold_ps=HOLD,
                                 checking_ps=cp.checking_ps)
        apply_hold_padding(netlist, plan)
        minimums = min_delay_by_capture(netlist)
        for capture in netlist.capture_nets:
            assert minimums[capture] >= HOLD + cp.checking_ps

        # 2. The padded netlist still meets setup timing: padding only
        # appends to register inputs whose max path had enough slack...
        sta_after = run_sta(netlist, PERIOD)
        # ... which is not guaranteed in general; what IS guaranteed is
        # that unpadded endpoints kept their arrival times.
        unpadded = {
            fix.capture_net for fix in plan.fixes if fix.buffers == 0
        }
        for capture in unpadded:
            assert sta_after.max_arrival[capture] == \
                sta_before.max_arrival[capture]

        # 3. Reduce to a timing graph and deploy TIMBER.
        graph = netlist_to_timing_graph(netlist, PERIOD)
        assert graph.num_ffs > 0
        design = TimberDesign(graph=graph, style=TimberStyle.FLIP_FLOP,
                              percent_checking=20.0)
        summary = design.summary()
        assert summary["ffs_replaced"] <= summary["ffs_total"]
        assert design.relay_meets_timing()

    def test_path_enumeration_consistent_with_graph(self, netlist):
        paths = enumerate_paths(netlist, PERIOD, max_paths_per_endpoint=4)
        graph = netlist_to_timing_graph(netlist, PERIOD)
        # The worst enumerated delay per endpoint equals the graph's
        # worst in-edge for the corresponding capture FF.
        for capture in netlist.capture_nets:
            endpoint_paths = [p for p in paths if p.capture == capture]
            if not endpoint_paths:
                continue
            worst = max(p.delay_ps for p in endpoint_paths)
            assert worst == graph.max_in_delay(f"C:{capture}")
