"""Integration: the docs/tutorial.md flow runs as written.

Executes the tutorial's eight steps end-to-end so the documentation
cannot rot: if an API in the walkthrough changes, this test breaks.
"""

import pytest

from repro.circuit.generate import random_stage
from repro.core import CheckingPeriod, TimberDesign, TimberStyle, \
    select_budgeted
from repro.pipeline import CentralErrorController, GraphPipelineSimulation
from repro.power import margin_to_energy_savings
from repro.timing import (
    ExceptionSet,
    apply_hold_padding,
    enumerate_paths,
    false_path,
    hold_padding_plan,
    multicycle_path,
    netlist_to_timing_graph,
    run_sta,
    run_ssta,
)
from repro.variability import (
    CompositeVariation,
    LocalVariation,
    VoltageDroopVariation,
)

PERIOD = 390


@pytest.fixture(scope="module")
def flow():
    """Run all tutorial steps once; tests assert on the pieces."""
    # 1. design
    netlist = random_stage(num_inputs=16, num_outputs=12, depth=10,
                           width=24, seed=2024)
    # 2. sign-off
    sta = run_sta(netlist, period_ps=PERIOD)
    worst = enumerate_paths(netlist, PERIOD).top_count(5)
    exceptions = ExceptionSet([
        false_path(from_pattern="cfg_*"),
        multicycle_path(2, to_pattern="mult_out*"),
    ])
    # 3. violation profile
    stress = CompositeVariation([
        LocalVariation(sigma=0.01, max_factor=1.03, seed=1),
        VoltageDroopVariation(event_probability=0.01, amplitude=0.06,
                              seed=2),
    ])
    profile = run_ssta(netlist, period_ps=PERIOD, variability=stress,
                       trials=300)
    needed = profile.required_margin_ps()
    # 4. checking period
    cp = next(
        CheckingPeriod.with_tb(PERIOD, percent)
        for percent in (10.0, 20.0, 30.0, 40.0)
        if CheckingPeriod.with_tb(PERIOD, percent).recovered_margin_ps
        >= needed
    )
    # 5. hold fix
    plan = hold_padding_plan(netlist, hold_ps=15,
                             checking_ps=cp.checking_ps)
    apply_hold_padding(netlist, plan)
    # 6. deploy
    graph = netlist_to_timing_graph(netlist, PERIOD)
    design = TimberDesign(graph=graph, style=TimberStyle.FLIP_FLOP,
                          percent_checking=cp.percent)
    partial = select_budgeted(graph, cp.percent,
                              power_budget_percent=5.0)
    # 7. simulate
    controller = CentralErrorController(period_ps=graph.period_ps,
                                        consolidation_latency_ps=500)
    sim = GraphPipelineSimulation(graph, scheme="timber-ff",
                                  percent_checking=cp.percent,
                                  sensitization_prob=0.01,
                                  variability=stress,
                                  controller=controller)
    result = sim.run(3000)
    # 8. spend the margin
    savings = margin_to_energy_savings(
        design.recovered_margin_percent,
        element_overhead_percent=(
            design.overhead().power_overhead_percent))
    return locals()


class TestTutorialFlow:
    def test_signoff(self, flow):
        assert flow["sta"].meets_timing()
        assert len(flow["worst"]) == 5
        assert len(flow["exceptions"]) == 2

    def test_profile_sized_the_margin(self, flow):
        assert flow["needed"] >= 0
        assert flow["cp"].recovered_margin_ps >= flow["needed"]

    def test_deployment(self, flow):
        design = flow["design"]
        assert design.relay_meets_timing()
        assert 0 <= flow["partial"].coverage <= 1

    def test_simulation_clean(self, flow):
        result = flow["result"]
        assert result.failed == 0
        assert result.failed_unprotected == 0

    def test_energy_story(self, flow):
        assert flow["savings"].gross_savings_percent >= 0
