"""Integration: OR-tree sizing drives the controller's real latency.

Closes the consolidation loop end-to-end: size the error OR-tree for an
actual TIMBER deployment, check it fits the checking period's budget,
feed its latency into the central controller, and run the whole-graph
simulation — the controller must still suppress every failure.
"""

import pytest

from repro.core.architecture import TimberDesign, TimberStyle
from repro.core.ortree import build_or_tree
from repro.pipeline.controller import CentralErrorController
from repro.pipeline.graph_sim import GraphPipelineSimulation
from repro.processor.generator import generate_processor
from repro.processor.perfpoints import MEDIUM_PERFORMANCE
from repro.variability import VoltageDroopVariation

CHECKING = 30.0


@pytest.fixture(scope="module")
def deployment():
    graph = generate_processor(MEDIUM_PERFORMANCE, num_stages=6,
                               ffs_per_stage=80, fanin=4, seed=5)
    design = TimberDesign(graph=graph, style=TimberStyle.FLIP_FLOP,
                          percent_checking=CHECKING)
    tree = build_or_tree(len(design.protected_ffs), fanin=4)
    return graph, design, tree


class TestBudget:
    def test_tree_fits_checking_period_budget(self, deployment):
        _graph, design, tree = deployment
        assert tree.fits_budget(design.checking_period,
                                controller_decision_ps=120)

    def test_tree_latency_scales_with_protection(self, deployment):
        _graph, design, tree = deployment
        small_tree = build_or_tree(8, fanin=4)
        assert tree.depth >= small_tree.depth
        assert tree.num_inputs == len(design.protected_ffs)


class TestClosedLoop:
    def test_real_latency_controller_suppresses_failures(self, deployment):
        graph, design, tree = deployment
        latency = tree.latency_ps + 120
        controller = CentralErrorController(
            period_ps=graph.period_ps,
            consolidation_latency_ps=latency,
            slowdown_factor=1.25, slowdown_cycles=64)
        assert controller.latency_fits(design.checking_period)
        sim = GraphPipelineSimulation(
            graph, scheme="timber-ff", percent_checking=CHECKING,
            sensitization_prob=0.01,
            variability=VoltageDroopVariation(
                event_probability=2e-3, amplitude=0.07,
                amplitude_jitter=0.0, seed=3),
            controller=controller, seed=1,
        )
        result = sim.run(3000)
        assert result.failed == 0
        assert result.failed_unprotected == 0
        assert result.masked > 0
        # The controller actually reacted (flags arrived through ED
        # borrows during droop chains).
        assert controller.flags_received > 0

    def test_reaction_delay_reflects_tree_latency(self, deployment):
        graph, _design, tree = deployment
        fast = CentralErrorController(
            period_ps=graph.period_ps, consolidation_latency_ps=100)
        slow = CentralErrorController(
            period_ps=graph.period_ps,
            consolidation_latency_ps=tree.latency_ps + 120)
        assert slow.reaction_delay_cycles >= fast.reaction_delay_cycles
