"""Shared fixtures for the TIMBER reproduction test suite."""

from __future__ import annotations

import pytest

from repro.circuit.cells import default_library
from repro.core.checking_period import CheckingPeriod
from repro.processor.generator import generate_processor
from repro.processor.perfpoints import MEDIUM_PERFORMANCE
from repro.sim.clocks import ClockGenerator
from repro.sim.engine import Simulator

#: Canonical clock period used across element-level tests.
PERIOD_PS = 1000


@pytest.fixture
def library():
    return default_library()


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def clocked_sim():
    """A simulator with a 1 ns clock on signal ``clk``."""
    simulator = Simulator()
    ClockGenerator(simulator, "clk", PERIOD_PS)
    return simulator


@pytest.fixture
def cp_with_tb():
    """1 TB + 2 ED checking period, 30% of a 1 ns clock."""
    return CheckingPeriod.with_tb(PERIOD_PS, 30)


@pytest.fixture
def cp_without_tb():
    """2 ED intervals, 30% of a 1 ns clock."""
    return CheckingPeriod.without_tb(PERIOD_PS, 30)


@pytest.fixture(scope="session")
def medium_graph():
    """The medium-performance synthetic processor (shared: ~12k edges)."""
    return generate_processor(MEDIUM_PERFORMANCE)
