"""Fig. 1 — critical-path distribution between flip-flops.

Regenerates the motivation chart: for each performance point (low /
medium / high) and each criticality threshold (top 10/20/30/40%), the
percentage of flip-flops at which critical paths terminate, and the
shaded sub-bar of flip-flops that both start AND end critical paths.

Shape checks (the paper's text anchors):
* medium point, top-20%: ~50% of FFs terminate critical paths and ~70%
  of those start none;
* bars grow with the threshold and with the performance point;
* the shaded (start+end) portion is a minority at operating thresholds.
"""

import pytest

from repro.analysis.experiments import fig1_experiment
from repro.analysis.tables import format_table

#: Values read off the paper's Fig. 1 are not recoverable from the text
#: (the OCR keeps only the medium/top-20% quote), so the paper column
#: records the quoted anchor and the generator's calibrated targets.
PAPER_ANCHORS = {
    ("medium", 20.0): (50.0, 15.0),  # (% ending, % start+end)
}


def test_fig1(benchmark, report):
    results = benchmark.pedantic(fig1_experiment, rounds=1, iterations=1)

    rows = []
    for name in ("low", "medium", "high"):
        for dist in results[name]:
            anchor = PAPER_ANCHORS.get((name, dist.percent_threshold))
            rows.append([
                name,
                f"top {dist.percent_threshold:.0f}%",
                f"{dist.pct_ffs_ending:.1f}",
                f"{dist.pct_ffs_through:.1f}",
                f"{dist.pct_endpoints_single_stage_only:.0f}",
                f"{anchor[0]:.0f} / {anchor[1]:.0f}" if anchor else "-",
            ])
    table = format_table(
        ["point", "threshold", "% FFs ending", "% FFs start+end",
         "% endpoints single-stage-only", "paper (end / start+end)"],
        rows)

    # -- shape assertions ---------------------------------------------
    medium = {d.percent_threshold: d for d in results["medium"]}
    assert medium[20.0].pct_ffs_ending == pytest.approx(50.0, abs=5.0)
    assert medium[20.0].pct_endpoints_single_stage_only == pytest.approx(
        70.0, abs=10.0)
    for name in ("low", "medium", "high"):
        ending = [d.pct_ffs_ending for d in results[name]]
        assert ending == sorted(ending), "bars must grow with threshold"
    for threshold_index in range(4):
        across_points = [
            results[name][threshold_index].pct_ffs_ending
            for name in ("low", "medium", "high")
        ]
        assert across_points == sorted(across_points), \
            "bars must grow with the performance point"

    report("fig1_critical_path_distribution", table)
