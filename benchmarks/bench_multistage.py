"""X2 (extension) — multi-stage timing-error probability vs chain depth.

Quantifies the paper's Sec. 3 argument: with a critical-path
sensitization probability of order 1e-3, the probability of a k-stage
timing error collapses geometrically in k, so masking two or three
stages (plus a slow frequency backstop) covers everything that matters.

Checked both in closed form and by Monte-Carlo on the synthetic
processor's critical-path chain structure.
"""

import pytest

from repro.analysis.tables import format_series, format_table
from repro.processor.generator import generate_processor
from repro.processor.perfpoints import MEDIUM_PERFORMANCE
from repro.processor.workload import (
    SensitizationModel,
    multi_stage_error_probability,
    sample_multi_stage_events,
)

#: Inflated sensitization for the Monte-Carlo cross-check (the paper's
#: 1e-3 would need ~1e9 cycles to see a 2-stage event).
MC_SENSITIZATION = 0.05
MC_CYCLES = 3_000


def _run():
    graph = generate_processor(MEDIUM_PERFORMANCE, num_stages=6,
                               ffs_per_stage=80, seed=9)
    model = SensitizationModel(base_probability=MC_SENSITIZATION,
                               period_ps=graph.period_ps)
    counts = sample_multi_stage_events(
        graph, percent_threshold=20.0, model=model,
        violation_probability=1.0, num_cycles=MC_CYCLES, seed=3,
        max_chain=3)
    closed_form = {
        k: multi_stage_error_probability(1e-3, 0.5, k)
        for k in range(1, 5)
    }
    return counts, closed_form


def test_multistage(benchmark, report):
    counts, closed_form = benchmark.pedantic(_run, rounds=1, iterations=1)

    # Closed form: strict geometric decay at the paper's parameters.
    ks = sorted(closed_form)
    probs = [closed_form[k] for k in ks]
    for first, second in zip(probs, probs[1:]):
        assert second == pytest.approx(first * probs[0])
    assert probs[1] / probs[0] < 1e-3  # "negligibly small"

    # Monte-Carlo on the real chain structure: counts must decay fast.
    assert counts[1] > 0
    assert counts[2] < counts[1]
    assert counts[3] <= counts[2]

    series = format_series(
        "closed-form P(k-stage error per cycle per path)",
        ks, probs, x_label="k", y_label="P", float_digits=12)
    table = format_table(
        ["k (chain depth)", f"Monte-Carlo events in {MC_CYCLES} cycles "
                            f"(sensitization {MC_SENSITIZATION})"],
        [[k, counts[k]] for k in sorted(counts)])
    report("x2_multistage_error_rate", series + "\n\n" + table)
