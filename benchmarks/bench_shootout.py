"""X9 (extension) — the full technique shoot-out.

Every architecture in the library — unprotected, TIMBER flip-flop,
TIMBER latch, Razor, canary, delay-compensation FF, clock-stall, and
logical masking — on the same stressed pipeline, reporting the complete
Table-1 story dynamically: who corrupts state, who masks, who detects,
who predicts, and what each pays in throughput.

Shape checks (the paper's qualitative matrix, measured):

* only the unprotected design fails silently under this (margin-sized)
  stress;
* Razor detects everything but pays replay; clock-stall masks but pays
  a stall per error; canary predicts without ever borrowing;
* the TIMBER variants and logical masking keep ~full throughput;
* nobody flags a false error (flags only happen under violations).
"""

from repro.analysis.tables import format_table
from repro.baselines.architectures import ARCHITECTURES
from repro.pipeline.controller import CentralErrorController
from repro.pipeline.pipeline import PipelineSimulation
from repro.pipeline.stage import PipelineStage
from repro.variability import (
    CompositeVariation,
    LocalVariation,
    VoltageDroopVariation,
)

PERIOD = 1000
NUM_STAGES = 5
NUM_CYCLES = 10_000
CHECKING = 30.0


def _run():
    results = {}
    for architecture in ARCHITECTURES:
        stages = [
            PipelineStage(name=f"so{i}", critical_delay_ps=950,
                          typical_delay_ps=700,
                          sensitization_prob=0.08, seed=300 + i)
            for i in range(NUM_STAGES)
        ]
        stress = CompositeVariation([
            LocalVariation(sigma=0.015, max_factor=1.03, seed=61),
            VoltageDroopVariation(event_probability=3e-3, amplitude=0.07,
                                  amplitude_jitter=0.0, seed=62),
        ])
        policy = architecture.build_policy(NUM_STAGES, PERIOD, CHECKING)
        controller = CentralErrorController(
            period_ps=PERIOD, consolidation_latency_ps=PERIOD)
        sim = PipelineSimulation(stages, policy, period_ps=PERIOD,
                                 controller=controller,
                                 variability=stress)
        results[architecture.key] = sim.run(NUM_CYCLES)
    return results


def test_shootout(benchmark, report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = []
    for key, result in results.items():
        rows.append([
            key, result.masked, result.detected, result.predicted,
            result.failed, result.replay_cycles,
            f"{result.throughput_factor:.4f}",
        ])
    table = format_table(
        ["scheme", "masked", "detected", "predicted",
         "failed (silent)", "recovery cycles", "throughput"], rows)

    # The paper's qualitative matrix, dynamically verified.
    assert results["plain"].failed > 0
    for key in ("timber-ff", "timber-latch", "razor", "canary",
                "clock-stall"):
        assert results[key].failed == 0, key
    # The DCF corrupts state under chained borrowing — exactly the
    # paper's Sec. 2 criticism: the borrowed time is *assumed* to be
    # absorbed by a non-critical next stage, and nothing relays the
    # debt, so a two-stage violation lands outside its detector window.
    assert results["dcf"].failed > 0
    assert results["dcf"].masked > 0  # single-stage errors still masked
    assert results["razor"].detected > 0
    assert results["razor"].replay_cycles > 0
    assert results["canary"].predicted > 0
    assert results["clock-stall"].masked > 0
    assert results["clock-stall"].replay_cycles > 0
    # Logical masking with 80% coverage leaks the uncovered boundary.
    assert results["logical"].masked > 0
    # TIMBER keeps ~full throughput; Razor and canary measurably do not.
    assert results["timber-latch"].throughput_factor > 0.999
    assert results["razor"].throughput_factor < \
        results["timber-ff"].throughput_factor
    assert results["canary"].throughput_factor < \
        results["timber-ff"].throughput_factor

    report("x9_shootout", table)
