"""X9 (extension) — the full technique shoot-out.

Every architecture in the library — unprotected, TIMBER flip-flop,
TIMBER latch, Razor, canary, delay-compensation FF, clock-stall, and
logical masking — on the same stressed pipeline, reporting the complete
Table-1 story dynamically: who corrupts state, who masks, who detects,
who predicts, and what each pays in throughput.

Shape checks (the paper's qualitative matrix, measured):

* only the unprotected design fails silently under this (margin-sized)
  stress;
* Razor detects everything but pays replay; clock-stall masks but pays
  a stall per error; canary predicts without ever borrowing;
* the TIMBER variants and logical masking keep ~full throughput;
* nobody flags a false error (flags only happen under violations).

Runs through the parallel sweep runner (one task per architecture) with
the shared on-disk result cache; the appended run summary shows cache
hits and per-task timings.
"""

from conftest import make_sweep_runner, record_bench

from repro.analysis.experiments import shootout_sweep
from repro.analysis.tables import format_table
from repro.exec.telemetry import format_summary

NUM_CYCLES = 10_000


def _run(runner):
    return shootout_sweep(num_cycles=NUM_CYCLES, runner=runner)


def test_shootout(benchmark, report):
    runner = make_sweep_runner()
    results = benchmark.pedantic(_run, args=(runner,), rounds=1,
                                 iterations=1)

    rows = []
    for key, result in results.items():
        rows.append([
            key, result.masked, result.detected, result.predicted,
            result.failed, result.replay_cycles,
            f"{result.throughput_factor:.4f}",
        ])
    table = format_table(
        ["scheme", "masked", "detected", "predicted",
         "failed (silent)", "recovery cycles", "throughput"], rows)

    # The paper's qualitative matrix, dynamically verified.
    assert results["plain"].failed > 0
    for key in ("timber-ff", "timber-latch", "razor", "canary",
                "clock-stall"):
        assert results[key].failed == 0, key
    # The DCF corrupts state under chained borrowing — exactly the
    # paper's Sec. 2 criticism: the borrowed time is *assumed* to be
    # absorbed by a non-critical next stage, and nothing relays the
    # debt, so a two-stage violation lands outside its detector window.
    assert results["dcf"].failed > 0
    assert results["dcf"].masked > 0  # single-stage errors still masked
    assert results["razor"].detected > 0
    assert results["razor"].replay_cycles > 0
    assert results["canary"].predicted > 0
    assert results["clock-stall"].masked > 0
    assert results["clock-stall"].replay_cycles > 0
    # Logical masking with 80% coverage leaks the uncovered boundary.
    assert results["logical"].masked > 0
    # TIMBER keeps ~full throughput; Razor and canary measurably do not.
    assert results["timber-latch"].throughput_factor > 0.999
    assert results["razor"].throughput_factor < \
        results["timber-ff"].throughput_factor
    assert results["canary"].throughput_factor < \
        results["timber-ff"].throughput_factor

    assert runner.last_run is not None
    table += "\n\nrun summary\n" + format_summary(
        runner.last_run.summary)
    report("x9_shootout", table)
    record_bench(
        "x9_shootout",
        simulated_cycles=len(results) * NUM_CYCLES,
        summary=runner.last_run.summary,
        extra={"grid_points": len(results)},
    )
