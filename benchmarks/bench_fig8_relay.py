"""Fig. 8(i) — error-relay logic: (a) area overhead and (b) timing slack.

Regenerates both panels over the full case-study grid: three processor
performance points x four checking periods (10/20/30/40% of the clock
period).  Shape checks: relay area overhead is small and grows with the
checking period; relay slack stays large (the paper attributes this to
the small number of flip-flops that are both start- and end-points of
critical paths) and always meets the half-cycle budget.
"""

import time

from conftest import record_bench

from repro.analysis.experiments import fig8_experiment
from repro.analysis.tables import format_table


def test_fig8_relay(benchmark, report):
    start = time.perf_counter()
    rows = benchmark.pedantic(fig8_experiment, rounds=1, iterations=1)
    wall = time.perf_counter() - start

    relay_rows = [r for r in rows
                  if r.style == "ff" and r.with_tb_interval]
    table_rows = []
    for row in relay_rows:
        table_rows.append([
            row.point,
            f"{row.checking_percent:.0f}%",
            row.ffs_replaced,
            f"{row.relay_area_overhead_percent:.2f}",
            f"{row.relay_slack_percent:.0f}",
        ])
    table = format_table(
        ["point", "checking period", "FFs replaced",
         "(a) relay area overhead %", "(b) relay timing slack %"],
        table_rows)

    by_point: dict[str, list] = {}
    for row in relay_rows:
        by_point.setdefault(row.point, []).append(row)
    for point, series in by_point.items():
        series.sort(key=lambda r: r.checking_percent)
        areas = [r.relay_area_overhead_percent for r in series]
        # (a) grows with the checking period and stays small.
        assert areas == sorted(areas)
        assert all(a < 20.0 for a in areas)
        # (b) slack is large: relay needs well under half a cycle.
        assert all(r.relay_slack_percent > 50.0 for r in series)

    report("fig8i_relay_area_and_slack", table)
    # Fig. 8 is static design analysis, not cycle simulation, so there
    # is no cycle count; the grid size stands in as the work measure.
    record_bench(
        "fig8_relay",
        simulated_cycles=None,
        wall_time_s=wall,
        extra={"grid_rows": len(rows)},
    )
