"""X1 (extension) — masked / detected / failed outcomes under droop.

Sweeps the voltage-droop amplitude on a five-stage pipeline and compares
the resilience schemes head to head.  Shape checks (the qualitative
claims of Table 1 played out dynamically): the unprotected design fails
silently as soon as droops push paths past the edge; TIMBER masks every
violation within the recovered margin with near-unity throughput; Razor
detects the same violations but pays replay; canary keeps state correct
at a standing throughput cost.

Runs through the parallel sweep runner with the on-disk result cache
(``benchmarks/.sweep-cache``): the first run is cold and fans the grid
out across worker processes; a rerun is served from the cache, and the
run summary appended to the artefact shows the cache hits and per-task
timings.
"""

from conftest import make_sweep_runner, record_bench

from repro.analysis.experiments import resilience_sweep
from repro.analysis.tables import format_table
from repro.exec.telemetry import format_summary

AMPLITUDES = (0.0, 0.04, 0.08)
TECHNIQUES = ("plain", "timber-ff", "timber-latch", "razor", "canary")


def _run(runner):
    return resilience_sweep(
        techniques=TECHNIQUES,
        droop_amplitudes=AMPLITUDES,
        num_cycles=12_000,
        runner=runner,
    )


def test_resilience_sweep(benchmark, report):
    runner = make_sweep_runner()
    points = benchmark.pedantic(_run, args=(runner,), rounds=1,
                                iterations=1)

    rows = []
    for point in points:
        result = point.result
        rows.append([
            point.technique,
            f"{point.droop_amplitude * 100:.0f}%",
            result.masked,
            result.detected,
            result.predicted,
            result.failed,
            f"{result.throughput_factor:.4f}",
        ])
    table = format_table(
        ["scheme", "droop", "masked", "detected", "predicted",
         "failed", "throughput"], rows)

    by_key = {(p.technique, p.droop_amplitude): p.result for p in points}
    worst = max(AMPLITUDES)
    # Plain fails under real droops; the TIMBER variants do not.
    assert by_key[("plain", worst)].failed > 0
    assert by_key[("timber-ff", worst)].failed == 0
    assert by_key[("timber-latch", worst)].failed == 0
    # TIMBER masks; Razor detects (with replay); canary predicts.
    assert by_key[("timber-ff", worst)].masked > 0
    assert by_key[("razor", worst)].detected > 0
    assert by_key[("canary", worst)].predicted > 0
    # Throughput ordering at the worst stress level.
    assert by_key[("timber-ff", worst)].throughput_factor >= \
        by_key[("razor", worst)].throughput_factor
    assert by_key[("timber-ff", worst)].throughput_factor >= \
        by_key[("canary", worst)].throughput_factor
    # With no droops, nothing fails anywhere.
    assert all(by_key[(t, 0.0)].failed == 0 for t in TECHNIQUES)

    assert runner.last_run is not None
    table += "\n\nrun summary\n" + format_summary(
        runner.last_run.summary)
    report("x1_resilience_sweep", table)
    record_bench(
        "x1_resilience_sweep",
        simulated_cycles=len(points) * 12_000,
        summary=runner.last_run.summary,
        extra={"grid_points": len(points)},
    )
