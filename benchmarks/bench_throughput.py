"""X3 (extension) — throughput payoff of spending the recovered margin.

Overclocks the pipeline past its sign-off frequency and measures the
*effective* speedup per scheme once recovery costs are charged.  Shape
checks: the masking schemes convert most of the overclock into real
speedup; Razor's replay and canary's guard-band slowdowns erode the
gain; nobody corrupts state silently within the studied range.

Runs through the parallel sweep runner with the shared on-disk result
cache; the appended run summary shows cache hits and per-task timings.
"""

from conftest import make_sweep_runner, record_bench

from repro.analysis.experiments import throughput_sweep
from repro.analysis.tables import format_table
from repro.exec.telemetry import format_summary

OVERCLOCKS = (0.0, 4.0, 8.0)
TECHNIQUES = ("timber-ff", "timber-latch", "razor", "canary")


def _run(runner):
    return throughput_sweep(
        techniques=TECHNIQUES,
        overclock_percents=OVERCLOCKS,
        num_cycles=12_000,
        runner=runner,
    )


def test_throughput(benchmark, report):
    runner = make_sweep_runner()
    points = benchmark.pedantic(_run, args=(runner,), rounds=1,
                                iterations=1)

    rows = []
    for point in sorted(points, key=lambda p: (p.technique,
                                               p.overclock_percent)):
        rows.append([
            point.technique,
            f"+{point.overclock_percent:.0f}%",
            f"{point.effective_speedup:.4f}",
            point.result.failed,
        ])
    table = format_table(
        ["scheme", "overclock", "effective speedup", "silent failures"],
        rows)

    by_key = {(p.technique, p.overclock_percent): p for p in points}
    top = max(OVERCLOCKS)
    # TIMBER turns the overclock into real speedup.  The flip-flop
    # variant gives back most of it through flagged-error slowdowns but
    # stays net-positive; the latch variant keeps nearly all of it.
    assert by_key[("timber-ff", top)].effective_speedup > 1.001
    assert by_key[("timber-latch", top)].effective_speedup > 1.03
    # TIMBER's payoff beats Razor's and canary's at the same overclock.
    assert by_key[("timber-ff", top)].effective_speedup >= \
        by_key[("razor", top)].effective_speedup
    assert by_key[("timber-ff", top)].effective_speedup >= \
        by_key[("canary", top)].effective_speedup
    # The masking schemes stay correct throughout the studied range.
    for technique in ("timber-ff", "timber-latch"):
        for overclock in OVERCLOCKS:
            assert by_key[(technique, overclock)].result.failed == 0

    assert runner.last_run is not None
    table += "\n\nrun summary\n" + format_summary(
        runner.last_run.summary)
    report("x3_throughput_payoff", table)
    record_bench(
        "x3_throughput_payoff",
        simulated_cycles=len(points) * 12_000,
        summary=runner.last_run.summary,
        extra={"grid_points": len(points)},
    )
