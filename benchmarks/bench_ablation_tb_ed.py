"""X4 (ablation) — TB vs ED interval split of the checking period.

DESIGN.md calls out the paper's central design choice: for a fixed
checking period, how many intervals should be TB (mask silently) vs ED
(mask and flag)?  The paper argues the trade-off in Sec. 4:

* eliminating the TB interval (k=2) recovers a larger margin (c/2 vs
  c/3) but flags every single-stage error to the controller;
* keeping one TB interval (k=3) recovers less margin but defers flags
  to genuine multi-stage errors, so the controller intervenes far less.

This ablation runs both variants (plus a 4-interval variant) on the same
stressed pipeline and measures margin, flags, and controller activity.
"""

from repro.analysis.tables import format_table
from repro.core.checking_period import CheckingPeriod
from repro.pipeline.controller import CentralErrorController
from repro.pipeline.pipeline import PipelineSimulation
from repro.pipeline.schemes import TimberFFPolicy
from repro.pipeline.stage import PipelineStage
from repro.variability import (
    CompositeVariation,
    LocalVariation,
    VoltageDroopVariation,
)

PERIOD_PS = 1000
PERCENT = 30.0
NUM_STAGES = 5
NUM_CYCLES = 12_000

#: (label, num_intervals, num_tb)
VARIANTS = (
    ("2 ED (no TB, k=2)", 2, 0),
    ("1 TB + 2 ED (k=3)", 3, 1),
    ("2 TB + 2 ED (k=4)", 4, 2),
)


def _run():
    stages = [
        PipelineStage(name=f"ab{i}", critical_delay_ps=950,
                      typical_delay_ps=700, sensitization_prob=0.05,
                      seed=900 + i)
        for i in range(NUM_STAGES)
    ]
    stress = CompositeVariation([
        LocalVariation(sigma=0.015, max_factor=1.03, seed=31),
        VoltageDroopVariation(event_probability=2e-3, amplitude=0.06,
                              amplitude_jitter=0.0, seed=32),
    ])
    outcomes = []
    for label, k, tb in VARIANTS:
        cp = CheckingPeriod(PERIOD_PS, PERCENT, num_intervals=k, num_tb=tb)
        controller = CentralErrorController(
            period_ps=PERIOD_PS, consolidation_latency_ps=PERIOD_PS)
        sim = PipelineSimulation(
            stages, TimberFFPolicy(NUM_STAGES, cp), period_ps=PERIOD_PS,
            controller=controller, variability=stress)
        outcomes.append((label, cp, sim.run(NUM_CYCLES), controller))
    return outcomes


def test_ablation_tb_ed(benchmark, report):
    outcomes = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = []
    for label, cp, result, controller in outcomes:
        rows.append([
            label,
            f"{cp.recovered_margin_ps}",
            result.masked,
            result.masked_flagged,
            controller.flags_received,
            result.slow_cycles,
            result.failed,
            f"{result.throughput_factor:.4f}",
        ])
    table = format_table(
        ["variant", "margin (ps)", "masked", "masked+flagged",
         "controller flags", "slow cycles", "failed", "throughput"],
        rows)

    no_tb = next(o for o in outcomes if o[1].num_tb == 0)
    one_tb = next(o for o in outcomes
                  if o[1].num_tb == 1 and o[1].num_intervals == 3)

    # The paper's trade-off, measured: no-TB recovers a larger margin...
    assert no_tb[1].recovered_margin_ps > one_tb[1].recovered_margin_ps
    # ...but flags (and therefore disturbs the controller) far more.
    assert no_tb[3].flags_received >= one_tb[3].flags_received
    assert no_tb[2].masked_flagged >= one_tb[2].masked_flagged
    # Neither variant lets a violation through.
    for _label, _cp, result, _controller in outcomes:
        assert result.failed == 0

    report("x4_ablation_tb_vs_ed", table)
