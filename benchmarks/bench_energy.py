"""X5 (extension) — spending the recovered margin as energy.

The paper frames margin recovery as "improving performance and/or power
consumption".  This bench converts each scheme's recovered margin into a
supply-voltage reduction (alpha-power law) and nets out the scheme's own
power overhead on the medium-performance processor.

Shape checks: TIMBER turns its c/3 margin into positive *net* savings;
canary nets zero-minus-overhead (its guard band recovers nothing); the
with-TB variant saves less gross energy than the without-TB variant of
the same checking period (smaller margin), mirroring the Fig. 8 margin
split.
"""

import pytest

from repro.analysis.tables import format_table
from repro.core.architecture import TimberDesign, TimberStyle
from repro.power.voltage import margin_to_energy_savings
from repro.processor.generator import generate_processor
from repro.processor.perfpoints import MEDIUM_PERFORMANCE

CHECKING = 30.0


def _run():
    graph = generate_processor(MEDIUM_PERFORMANCE)
    rows = []
    for style in (TimberStyle.FLIP_FLOP, TimberStyle.LATCH):
        for with_tb in (True, False):
            design = TimberDesign(graph=graph, style=style,
                                  percent_checking=CHECKING,
                                  with_tb_interval=with_tb)
            overhead = design.overhead().power_overhead_percent
            savings = margin_to_energy_savings(
                design.recovered_margin_percent,
                element_overhead_percent=overhead)
            rows.append((style.value, with_tb, design, savings))
    # Canary reference: zero margin, comparable element overhead.
    canary = margin_to_energy_savings(0.0, element_overhead_percent=9.0)
    return rows, canary


def test_energy(benchmark, report):
    rows, canary = benchmark.pedantic(_run, rounds=1, iterations=1)

    table_rows = []
    for style, with_tb, design, savings in rows:
        table_rows.append([
            f"timber-{style}",
            "with TB" if with_tb else "without TB",
            f"{savings.margin_percent:.1f}",
            f"{savings.scaled_vdd:.3f}",
            f"{savings.gross_savings_percent:.1f}",
            f"{savings.net_savings_percent:.1f}",
        ])
    table_rows.append([
        "canary", "-", "0.0", "1.000",
        f"{canary.gross_savings_percent:.1f}",
        f"{canary.net_savings_percent:.1f}",
    ])
    table = format_table(
        ["scheme", "variant", "margin (% of T)", "scaled Vdd",
         "gross savings %", "net savings %"], table_rows)

    by_key = {(style, with_tb): savings
              for style, with_tb, _design, savings in rows}
    # TIMBER nets positive savings in every configuration.
    for savings in by_key.values():
        assert savings.net_savings_percent > 0
    # Larger margin (no TB interval) -> larger gross savings.
    for style in ("ff", "latch"):
        assert by_key[(style, False)].gross_savings_percent > \
            by_key[(style, True)].gross_savings_percent
    # The latch nets more than the flip-flop (same margin, lower
    # overhead).
    for with_tb in (True, False):
        assert by_key[("latch", with_tb)].net_savings_percent > \
            by_key[("ff", with_tb)].net_savings_percent
    # Canary cannot save energy: no margin, only overhead.
    assert canary.net_savings_percent < 0

    report("x5_energy_savings", table)
