"""X8 (extension) — design-time techniques vs TIMBER.

Two design-time baselines the paper positions itself against:

* **useful-skew scheduling** (ref. [2]): balances *static* slack before
  tape-out.  Folding an optimal bounded-skew schedule into the synthetic
  processor reshuffles endpoint criticality — but cannot react to
  dynamic variability at runtime.
* **soft-edge flip-flops** (ref. [3]): a fixed silent transparency
  window.  Under fast droops they mask like a TIMBER latch; under a
  *slow drift* that eventually exceeds the window they fail silently,
  because nothing observes the window being consumed — whereas TIMBER
  flags the drift and rides it out with the frequency controller.

Shape checks: skew scheduling improves worst slack and lowers the
minimum feasible period; under drift the soft-edge pipeline corrupts
state silently while TIMBER reports zero failures.
"""

from repro.analysis.tables import format_table
from repro.core.checking_period import CheckingPeriod
from repro.pipeline.controller import CentralErrorController
from repro.pipeline.pipeline import PipelineSimulation
from repro.pipeline.schemes import SoftEdgePolicy, TimberLatchPolicy
from repro.pipeline.stage import PipelineStage
from repro.processor.generator import generate_processor
from repro.processor.perfpoints import MEDIUM_PERFORMANCE
from repro.timing.skew import schedule_useful_skew, skewed_graph
from repro.variability import TemperatureDriftVariation

PERIOD = 1000
NUM_STAGES = 5
NUM_CYCLES = 8_000
CHECKING = 30.0


def _run_skew_study():
    graph = generate_processor(MEDIUM_PERFORMANCE, num_stages=6,
                               ffs_per_stage=60, fanin=4, seed=11)
    schedule = schedule_useful_skew(
        graph, max_skew_ps=int(0.05 * graph.period_ps))
    folded = skewed_graph(graph, schedule)
    return graph, schedule, folded


def _run_drift_study():
    # Slow thermal drift peaking at +9%: beyond the 10%-margin windows'
    # single-interval coverage is fine, but past a 60 ps soft-edge
    # window on the critical stage.
    stages = [
        PipelineStage(name=f"dt{i}", critical_delay_ps=970,
                      typical_delay_ps=700, sensitization_prob=0.2,
                      seed=70 + i)
        for i in range(NUM_STAGES)
    ]
    drift = TemperatureDriftVariation(amplitude=0.09,
                                      period_cycles=NUM_CYCLES)
    cp = CheckingPeriod.with_tb(PERIOD, CHECKING)
    results = {}
    for name, policy in (
        ("soft-edge", SoftEdgePolicy(NUM_STAGES, window_ps=60)),
        ("timber-latch", TimberLatchPolicy(NUM_STAGES, cp)),
    ):
        controller = CentralErrorController(
            period_ps=PERIOD, consolidation_latency_ps=PERIOD,
            slowdown_factor=1.2, slowdown_cycles=256)
        sim = PipelineSimulation(stages, policy, period_ps=PERIOD,
                                 controller=controller,
                                 variability=drift)
        results[name] = (sim.run(NUM_CYCLES), controller)
    return results


def test_design_time(benchmark, report):
    (graph, schedule, folded), drift_results = benchmark.pedantic(
        lambda: (_run_skew_study(), _run_drift_study()),
        rounds=1, iterations=1)

    # -- useful skew: static improvement --------------------------------
    assert schedule.improvement_ps >= 0
    assert schedule.min_feasible_period_ps() <= graph.period_ps
    endpoints_before = len(graph.critical_endpoints(10.0))
    endpoints_after = len(folded.critical_endpoints(10.0))

    # -- drift: observability matters -----------------------------------
    soft, soft_ctrl = drift_results["soft-edge"]
    timber, timber_ctrl = drift_results["timber-latch"]
    assert soft.failed > 0          # silent corruption at drift peak
    assert timber.failed == 0       # flagged + controller slowdown
    assert timber_ctrl.flags_received > 0
    assert soft_ctrl.flags_received == 0  # nothing to flag: no signal

    rows = [
        ["useful skew: worst slack before (ps)",
         schedule.worst_slack_before_ps],
        ["useful skew: worst slack after (ps)",
         schedule.worst_slack_after_ps],
        ["useful skew: min feasible period (ps)",
         schedule.min_feasible_period_ps()],
        ["top-10% endpoints before skew", endpoints_before],
        ["top-10% endpoints after skew", endpoints_after],
        ["drift: soft-edge silent failures", soft.failed],
        ["drift: soft-edge masked", soft.masked],
        ["drift: TIMBER-latch failures", timber.failed],
        ["drift: TIMBER-latch masked", timber.masked],
        ["drift: TIMBER controller flags", timber_ctrl.flags_received],
        ["drift: TIMBER slow cycles", timber.slow_cycles],
    ]
    table = format_table(["quantity", "value"], rows)
    report("x8_design_time_vs_online", table)
