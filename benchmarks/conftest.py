"""Benchmark-harness fixtures and reporting helpers.

Every benchmark regenerates one of the paper's tables or figures: it
computes the experiment (timed through pytest-benchmark), asserts the
expected qualitative shape, and writes the rendered rows/series both to
stdout and to ``benchmarks/out/<name>.txt`` so results survive pytest's
output capture.
"""

from __future__ import annotations

import datetime
import json
import os
import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"

#: Repo root — the ``BENCH_<name>.json`` perf-trajectory files live here
#: (committed, one file per heavy bench; schema in DESIGN.md).
REPO_ROOT = pathlib.Path(__file__).parent.parent

#: Shared on-disk result cache for the heavy sweep benchmarks — a rerun
#: of an unchanged benchmark is served from here (delete the directory
#: or set REPRO_BENCH_NO_CACHE=1 for a cold run).
SWEEP_CACHE_DIR = pathlib.Path(__file__).parent / ".sweep-cache"


def make_sweep_runner(workers: int | None = None):
    """Build the sweep runner the heavy benchmarks share.

    Parallel by default (capped at 4 workers), cached on disk, telemetry
    collected; ``REPRO_BENCH_WORKERS`` / ``REPRO_BENCH_NO_CACHE``
    override from the environment.
    """
    from repro.exec import ResultCache, SweepRunner

    if workers is None:
        workers = int(os.environ.get(
            "REPRO_BENCH_WORKERS", min(4, os.cpu_count() or 1)))
    cache = (None if os.environ.get("REPRO_BENCH_NO_CACHE")
             else ResultCache(SWEEP_CACHE_DIR))
    return SweepRunner(workers=workers, cache=cache)


def record_bench(
    name: str,
    *,
    simulated_cycles: int | None,
    summary: dict | None = None,
    wall_time_s: float | None = None,
    extra: dict | None = None,
) -> pathlib.Path:
    """Append one run to the bench's ``BENCH_<name>.json`` trajectory.

    One file per bench at the repo root; each file holds one run entry
    per kernel mode (re-running a mode replaces its entry, so the file
    always shows the latest scalar-vs-vector comparison).  Wall time and
    cache counters come from the sweep-runner ``summary``; throughput is
    derived as simulated cycles per second of sweep wall time.  Schema
    is documented in DESIGN.md.
    """
    from repro.kernels import kernel_mode

    path = REPO_ROOT / f"BENCH_{name}.json"
    data = {"bench": name, "schema_version": 1, "runs": []}
    if path.exists():
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            pass
    mode = kernel_mode()
    wall = wall_time_s
    if wall is None and summary is not None:
        wall = float(summary["wall_time_s"])
    run: dict = {
        "kernel_mode": mode,
        "recorded_at": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "wall_time_s": wall,
        "simulated_cycles": simulated_cycles,
        "cycles_per_second": (
            round(simulated_cycles / wall, 1)
            if simulated_cycles and wall else None),
    }
    if summary is not None:
        run["workers"] = summary["workers"]
        run["cache_hits"] = summary["cache_hits"]
        run["cache_misses"] = summary["cache_misses"]
        run["point_wall_time_s"] = {
            "mean": round(summary["task_wall_time_s"]["mean"], 6),
            "max": round(summary["task_wall_time_s"]["max"], 6),
        }
    if extra:
        run.update(extra)
    runs = [r for r in data.get("runs", [])
            if r.get("kernel_mode") != mode]
    runs.append(run)
    data["runs"] = sorted(runs, key=lambda r: r.get("kernel_mode", ""))
    path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")
    return path


@pytest.fixture(scope="session")
def report():
    """Writer that records a rendered artefact to disk and stdout."""
    OUT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n===== {name} =====")
        print(text)

    return write


@pytest.fixture(scope="session")
def medium_graph():
    from repro.processor.generator import generate_processor
    from repro.processor.perfpoints import MEDIUM_PERFORMANCE

    return generate_processor(MEDIUM_PERFORMANCE)
