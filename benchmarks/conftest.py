"""Benchmark-harness fixtures and reporting helpers.

Every benchmark regenerates one of the paper's tables or figures: it
computes the experiment (timed through pytest-benchmark), asserts the
expected qualitative shape, and writes the rendered rows/series both to
stdout and to ``benchmarks/out/<name>.txt`` so results survive pytest's
output capture.
"""

from __future__ import annotations

import os
import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"

#: Shared on-disk result cache for the heavy sweep benchmarks — a rerun
#: of an unchanged benchmark is served from here (delete the directory
#: or set REPRO_BENCH_NO_CACHE=1 for a cold run).
SWEEP_CACHE_DIR = pathlib.Path(__file__).parent / ".sweep-cache"


def make_sweep_runner(workers: int | None = None):
    """Build the sweep runner the heavy benchmarks share.

    Parallel by default (capped at 4 workers), cached on disk, telemetry
    collected; ``REPRO_BENCH_WORKERS`` / ``REPRO_BENCH_NO_CACHE``
    override from the environment.
    """
    from repro.exec import ResultCache, SweepRunner

    if workers is None:
        workers = int(os.environ.get(
            "REPRO_BENCH_WORKERS", min(4, os.cpu_count() or 1)))
    cache = (None if os.environ.get("REPRO_BENCH_NO_CACHE")
             else ResultCache(SWEEP_CACHE_DIR))
    return SweepRunner(workers=workers, cache=cache)


@pytest.fixture(scope="session")
def report():
    """Writer that records a rendered artefact to disk and stdout."""
    OUT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n===== {name} =====")
        print(text)

    return write


@pytest.fixture(scope="session")
def medium_graph():
    from repro.processor.generator import generate_processor
    from repro.processor.perfpoints import MEDIUM_PERFORMANCE

    return generate_processor(MEDIUM_PERFORMANCE)
