"""Benchmark-harness fixtures and reporting helpers.

Every benchmark regenerates one of the paper's tables or figures: it
computes the experiment (timed through pytest-benchmark), asserts the
expected qualitative shape, and writes the rendered rows/series both to
stdout and to ``benchmarks/out/<name>.txt`` so results survive pytest's
output capture.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def report():
    """Writer that records a rendered artefact to disk and stdout."""
    OUT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n===== {name} =====")
        print(text)

    return write


@pytest.fixture(scope="session")
def medium_graph():
    from repro.processor.generator import generate_processor
    from repro.processor.perfpoints import MEDIUM_PERFORMANCE

    return generate_processor(MEDIUM_PERFORMANCE)
