"""X7 (ablation) — partial protection: coverage under a power budget.

The paper protects *every* endpoint of a top-c% critical path.  This
ablation asks what a budget-constrained deployment loses: greedy
selection by violation weight is swept over power budgets and the
violation-weighted coverage measured, then cross-checked dynamically by
running the whole-graph simulator with only the selected endpoints
protected.

Shape checks: coverage grows monotonically with the budget with
diminishing returns (the heavy endpoints are few); the full-budget point
recovers the paper's policy exactly; dynamically, unmasked violations
shrink as the budget grows.
"""

from repro.analysis.tables import format_table
from repro.core.selector import coverage_curve, select_all_critical
from repro.pipeline.graph_sim import GraphPipelineSimulation
from repro.processor.generator import generate_processor
from repro.processor.perfpoints import MEDIUM_PERFORMANCE
from repro.variability import ConstantVariation

CHECKING = 30.0
BUDGETS = (0.0, 2.0, 5.0, 10.0, 100.0)
NUM_CYCLES = 300


def _run():
    graph = generate_processor(MEDIUM_PERFORMANCE, num_stages=6,
                               ffs_per_stage=80, fanin=4, seed=5)
    curve = coverage_curve(graph, CHECKING, budgets=BUDGETS)
    full = select_all_critical(graph, CHECKING)

    # Dynamic cross-check: simulate with only the selected endpoints
    # protected (monkey-patching the simulator's protected set is the
    # supported extension point for custom deployments).
    dynamic = []
    for selection in curve:
        sim = GraphPipelineSimulation(
            graph, scheme="timber-latch", percent_checking=CHECKING,
            sensitization_prob=0.05,
            variability=ConstantVariation(1.05), seed=2,
        )
        sim.protected = set(selection.selected)
        result = sim.run(NUM_CYCLES)
        dynamic.append(result)
    return curve, full, dynamic


def test_coverage(benchmark, report):
    curve, full, dynamic = benchmark.pedantic(_run, rounds=1,
                                              iterations=1)

    rows = []
    for budget, selection, result in zip(BUDGETS, curve, dynamic):
        unmasked = result.failed + result.failed_unprotected
        rows.append([
            f"{budget:.0f}%",
            f"{selection.power_overhead_percent:.2f}",
            selection.num_selected,
            f"{selection.coverage:.3f}",
            result.masked,
            unmasked,
        ])
    table = format_table(
        ["power budget", "power spent %", "FFs protected",
         "static coverage", "masked (dynamic)", "unmasked (dynamic)"],
        rows)

    coverages = [s.coverage for s in curve]
    assert coverages == sorted(coverages)
    assert curve[0].coverage == 0.0
    assert curve[-1].selected == full.selected
    assert abs(curve[-1].coverage - 1.0) < 1e-9

    unmasked_counts = [
        r.failed + r.failed_unprotected for r in dynamic
    ]
    assert unmasked_counts == sorted(unmasked_counts, reverse=True)
    assert unmasked_counts[0] > 0        # nothing protected: failures
    assert unmasked_counts[-1] == 0      # full protection: none

    report("x7_coverage_vs_budget", table)
