"""Fig. 7 — two-stage timing error in a TIMBER latch design.

Same scenario as Fig. 5 but on structural TIMBER latches: continuous
time borrowing, no error relay, first error masked inside the TB
portion (not flagged), second error masked in the ED portion and
flagged by the master/slave comparison on the falling edge.
"""

from repro.analysis.experiments import two_stage_waveform_experiment

SIGNALS = ["clk", "d1", "q1", "err1", "d2", "q2", "err2"]


def test_fig7(benchmark, report):
    result = benchmark.pedantic(
        two_stage_waveform_experiment, args=("latch",),
        rounds=1, iterations=1)

    assert not result.stage1_flagged
    assert result.stage2_flagged
    assert result.q1_final == "1"
    assert result.q2_final == "1"

    # Continuous borrowing: q1 transitions at the data's late arrival
    # (+ the latch delay), not at a discrete interval boundary.
    q1_rises = result.recorder["q1"].rising_edges()
    assert q1_rises, "q1 must capture the late data"
    first_lateness = 60
    expected = result.period_ps + first_lateness
    assert any(abs(t - expected) <= 20 for t in q1_rises), (
        f"q1 rose at {q1_rises}, expected near {expected} "
        f"(continuous borrow)")

    art = result.recorder.render_ascii(
        end_ps=3 * result.period_ps + result.period_ps // 2,
        step_ps=50, order=SIGNALS)
    report("fig7_timber_latch_waveforms",
           art + "\nlegend: '#' high, '_' low, '?' unknown; "
                 "one column = 50 ps")
