"""Fig. 8(iii) — TIMBER latch power overhead vs recovered margin.

Same sweep as Fig. 8(ii) for the latch-based design.  Shape checks: the
latch design is strictly cheaper than the flip-flop design at every grid
point (1.5x vs 2x element power and no relay network), overhead grows
with the checking period, and the with/without-TB margin trade-off is
identical to the flip-flop case.

Expected delta from the simulator toggle-energy fix: none — see the
note in ``bench_fig8_ff_power.py``; these rows are analytic and the
X -> known settle never contributed to them.
"""

from repro.analysis.experiments import fig8_experiment
from repro.analysis.tables import format_table


def test_fig8_latch_power(benchmark, report):
    rows = benchmark.pedantic(fig8_experiment, rounds=1, iterations=1)
    latch_rows = [r for r in rows if r.style == "latch"]
    ff_rows = {(r.point, r.checking_percent, r.with_tb_interval): r
               for r in rows if r.style == "ff"}

    table_rows = []
    for row in sorted(latch_rows,
                      key=lambda r: (r.point, r.checking_percent,
                                     r.with_tb_interval)):
        table_rows.append([
            row.point,
            f"{row.checking_percent:.0f}%",
            "with TB" if row.with_tb_interval else "without TB",
            f"{row.margin_percent:.1f}",
            f"{row.power_overhead_percent:.2f}",
        ])
    table = format_table(
        ["point", "checking period", "variant",
         "margin recovered (% of T)", "power overhead %"],
        table_rows)

    for row in latch_rows:
        # No relay network in the latch design.
        assert row.relay_area_overhead_percent == 0.0
        # Strictly cheaper than the flip-flop design at the same point.
        counterpart = ff_rows[(row.point, row.checking_percent,
                               row.with_tb_interval)]
        assert row.power_overhead_percent < \
            counterpart.power_overhead_percent

    by_key: dict[tuple, list] = {}
    for row in latch_rows:
        by_key.setdefault((row.point, row.with_tb_interval),
                          []).append(row)
    for series in by_key.values():
        series.sort(key=lambda r: r.checking_percent)
        overheads = [r.power_overhead_percent for r in series]
        assert overheads == sorted(overheads)
        assert all(0 < o < 15.0 for o in overheads)

    report("fig8iii_latch_power_overhead", table)
