"""Fig. 2 — anatomy of the checking period and the consolidation budget.

Regenerates the timing diagram of Fig. 2 as a textual timeline for the
1 TB + 2 ED configuration: interval classification, which violations are
masked silently vs flagged, the falling-edge latch of the error signal,
and the 1.5-cycle error-consolidation budget.
"""

import pytest

from repro.core.checking_period import CheckingPeriod, IntervalKind
from repro.pipeline.controller import CentralErrorController

PERIOD_PS = 1000
PERCENT = 30.0


def _build_timeline() -> tuple[CheckingPeriod, str]:
    cp = CheckingPeriod.with_tb(PERIOD_PS, PERCENT)
    lines = [
        f"clock period: {cp.period_ps} ps; checking period: "
        f"{cp.checking_ps} ps ({cp.percent:.0f}%)",
        f"intervals: {cp.num_intervals} x {cp.interval_ps} ps "
        f"({cp.num_tb} TB + {cp.num_intervals - cp.num_tb} ED)",
        "",
        "time after clock edge | interval | kind | on a masked error",
    ]
    for index in range(1, cp.num_intervals + 1):
        start = (index - 1) * cp.interval_ps
        end = index * cp.interval_ps
        kind = cp.interval_kind(index)
        action = ("masked, NOT flagged" if kind is IntervalKind.TB
                  else "masked, flagged to controller")
        lines.append(
            f"  {start:4d}..{end:4d} ps       |    {index}     | "
            f"{kind.name}   | {action}")
    lines += [
        "",
        f"error signal latched on the falling edge "
        f"(+{cp.period_ps // 2} ps)",
        f"cycles still masked after the first flag: "
        f"{cp.stages_masked_after_flag}",
        f"error-consolidation budget: {cp.consolidation_budget_ps()} ps "
        f"= {cp.consolidation_budget_ps() / cp.period_ps:.1f} clock "
        f"cycles",
    ]
    return cp, "\n".join(lines)


def test_fig2(benchmark, report):
    cp, timeline = benchmark(_build_timeline)

    # The paper's Fig. 2 narrative, checked structurally:
    # one TB interval masks without flagging...
    assert cp.interval_kind(1) is IntervalKind.TB
    assert not cp.flags_on_interval(1)
    # ...the first ED interval masks AND flags...
    assert cp.interval_kind(2) is IntervalKind.ED
    assert cp.flags_on_interval(2)
    # ...and the second ED interval guarantees one more masked cycle,
    # yielding the 1.5-cycle consolidation budget.
    assert cp.stages_masked_after_flag == 1
    assert cp.consolidation_budget_ps() == 1500

    # A controller with a realistic OR-tree latency fits the budget.
    controller = CentralErrorController(
        period_ps=PERIOD_PS, consolidation_latency_ps=1200)
    assert controller.latency_fits(cp)
    tight = CentralErrorController(
        period_ps=PERIOD_PS, consolidation_latency_ps=1700)
    assert not tight.latency_fits(cp)

    report("fig2_checking_period", timeline)
