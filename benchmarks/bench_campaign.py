"""X12 (extension) — seeded fault-injection campaign, scheme shoot-out.

Runs the same seeded 1000-fault population (SEUs, delay faults, droop
pulses, correlated multi-stage slowdowns) against the five-stage
pipeline under each resilience scheme and classifies every fault into
the TB/ED taxonomy.  The paper's qualitative claim at campaign scale:
the plain design lets every sensitized timing error escape as silent
data corruption, the TIMBER flip-flop masks most violations silently
(TB interval) or relays them across cycles, and the TIMBER latch — all
of whose intervals detect — converts nearly everything into masked,
flagged outcomes.

The campaign fans out through the parallel sweep runner (chunked
tasks, on-disk result cache), and the coverage artefact is written in
the ``BENCH_campaign.json`` schema shared with ``repro.cli campaign``.
"""

from conftest import REPO_ROOT, make_sweep_runner, record_bench

from repro.campaign import (
    BENIGN,
    ESCAPED,
    MASKED_ED,
    MASKED_TB,
    RELAYED,
    CampaignConfig,
    render_reports,
    run_campaign,
    write_campaign_bench,
)
from repro.exec.telemetry import format_summary

SCHEMES = ("plain", "timber-ff", "timber-latch")
NUM_FAULTS = 1000
NUM_CYCLES = 2000


def _run(runner):
    results = {}
    for scheme in SCHEMES:
        config = CampaignConfig(scheme=scheme, num_faults=NUM_FAULTS,
                                num_cycles=NUM_CYCLES)
        results[scheme] = run_campaign(config, runner=runner)
    return results


def test_campaign_shootout(benchmark, report):
    runner = make_sweep_runner()
    results = benchmark.pedantic(_run, args=(runner,), rounds=1,
                                 iterations=1)
    reports = {s: results[s].report for s in SCHEMES}

    # Plain: no masking machinery, every sensitized violation escapes.
    assert reports["plain"].coverage == 0.0
    assert reports["plain"].counts[ESCAPED] > 0
    # TIMBER flip-flop: silent TB masking plus multi-cycle relaying.
    assert reports["timber-ff"].coverage > 0.5
    assert reports["timber-ff"].counts[MASKED_TB] > 0
    assert reports["timber-ff"].counts[RELAYED] > 0
    # TIMBER latch: every interval detects, so masking comes flagged.
    assert reports["timber-latch"].coverage > reports["timber-ff"].coverage
    assert reports["timber-latch"].counts[MASKED_ED] > 0
    # Identical populations: benign counts agree across schemes.
    assert len({reports[s].counts[BENIGN] for s in SCHEMES}) == 1
    # Escape ordering is the paper's resilience ordering.
    assert reports["timber-latch"].counts[ESCAPED] < \
        reports["timber-ff"].counts[ESCAPED] < \
        reports["plain"].counts[ESCAPED]

    table = render_reports([reports[s] for s in SCHEMES])
    summary = results[SCHEMES[-1]].summary
    table += "\n\nrun summary (last scheme)\n" + format_summary(summary)
    report("x12_campaign", table)

    write_campaign_bench(
        REPO_ROOT / "BENCH_campaign.json",
        [reports[s] for s in SCHEMES],
        config=results["timber-ff"].config,
        telemetry=summary,
    )
    record_bench(
        "x12_campaign_perf",
        simulated_cycles=len(SCHEMES) * NUM_FAULTS * NUM_CYCLES,
        summary=summary,
        extra={
            "schemes": list(SCHEMES),
            "num_faults": NUM_FAULTS,
            "faults_per_second": round(
                NUM_FAULTS / float(summary["wall_time_s"]), 1),
        },
    )
