"""Table 1 — comparison of online timing-error resilience techniques.

Regenerates the paper's qualitative comparison table from the technique
registry and checks the claims that drive the rest of the paper.
"""

from repro.analysis.tables import format_table
from repro.baselines.registry import (
    TABLE1_CATEGORIES,
    TechniqueCategory,
    table1_rows,
)


def _build_table() -> str:
    headers = ["Feature"] + [c.category.value for c in TABLE1_CATEGORIES]
    return format_table(headers, table1_rows(), max_col_width=34)


def test_table1(benchmark, report):
    table = benchmark(_build_table)

    by_cat = {c.category: c for c in TABLE1_CATEGORIES}
    temporal = by_cat[TechniqueCategory.TEMPORAL_MASKING]
    detection = by_cat[TechniqueCategory.ERROR_DETECTION]
    prediction = by_cat[TechniqueCategory.ERROR_PREDICTION]

    # The paper's headline comparisons: TIMBER recovers the full margin
    # with no rollback; detection needs recovery; prediction recovers
    # only partially.
    assert temporal.timing_margin_recovery == "Full"
    assert "No error" in temporal.error_recovery_mechanism
    assert "Rollback" in detection.error_recovery_mechanism
    assert prediction.timing_margin_recovery == "Partial"
    assert "TIMBER" in temporal.example_techniques

    report("table1_comparison", table)
