"""X6 (extension) — whole-processor error masking under droop.

Runs the TIMBER control loop on the synthetic processor's *actual*
flip-flop graph (not a toy linear pipeline): stochastic per-path
sensitization, chip-wide droop events, per-endpoint TIMBER elements,
the select relay along critical edges, and the central controller.

Shape checks: the unprotected processor silently corrupts state; both
TIMBER deployments mask every violation that lands on a protected
endpoint; the flip-flop style flags more (discrete ED borrows) than the
latch style; the controller's slowdown windows remain a tiny fraction
of the run.
"""

from repro.analysis.tables import format_table
from repro.pipeline.controller import CentralErrorController
from repro.pipeline.graph_sim import GraphPipelineSimulation
from repro.processor.generator import generate_processor
from repro.processor.perfpoints import MEDIUM_PERFORMANCE
from repro.variability import VoltageDroopVariation

NUM_CYCLES = 4_000
CHECKING = 30.0
SCHEMES = ("plain", "timber-ff", "timber-latch")


def _run():
    graph = generate_processor(MEDIUM_PERFORMANCE, num_stages=6,
                               ffs_per_stage=80, fanin=4, seed=5)
    results = {}
    for scheme in SCHEMES:
        controller = CentralErrorController(
            period_ps=graph.period_ps,
            consolidation_latency_ps=graph.period_ps)
        simulation = GraphPipelineSimulation(
            graph, scheme=scheme, percent_checking=CHECKING,
            sensitization_prob=0.01,
            variability=VoltageDroopVariation(
                event_probability=2e-3, amplitude=0.07,
                amplitude_jitter=0.0, seed=3),
            controller=controller, seed=1,
        )
        results[scheme] = (simulation.run(NUM_CYCLES), controller)
    return graph, results


def test_processor_masking(benchmark, report):
    graph, results = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = []
    for scheme in SCHEMES:
        result, controller = results[scheme]
        rows.append([
            scheme,
            result.num_protected,
            result.masked,
            result.masked_flagged,
            result.failed + result.failed_unprotected,
            controller.flags_received,
            result.slow_cycles,
        ])
    table = format_table(
        ["scheme", "FFs protected", "masked", "masked+flagged",
         "silent failures", "controller flags", "slow cycles"], rows)

    plain, _ = results["plain"]
    timber_ff, ff_ctrl = results["timber-ff"]
    timber_latch, latch_ctrl = results["timber-latch"]

    assert plain.failed_unprotected > 0
    assert timber_ff.failed == 0 and timber_ff.failed_unprotected == 0
    assert timber_latch.failed == 0 and \
        timber_latch.failed_unprotected == 0
    assert timber_ff.masked > 0 and timber_latch.masked > 0
    # Discrete borrowing flags more than continuous borrowing.
    assert timber_ff.masked_flagged >= timber_latch.masked_flagged
    # The controller intervenes rarely relative to the run length.
    for result, _ctrl in (results["timber-ff"],
                          results["timber-latch"]):
        assert result.slow_cycles < 0.2 * NUM_CYCLES

    header = (f"processor: {graph.num_ffs} FFs, {graph.num_edges} "
              f"paths, {NUM_CYCLES} cycles, 7% droops, "
              f"{CHECKING:.0f}% checking period\n")
    report("x6_processor_masking", header + table)
