"""Fig. 5 — two-stage timing error in a TIMBER flip-flop design.

Regenerates the paper's SPICE waveform experiment with the event-driven
structural model: two TIMBER flip-flops on successive pipeline stages, a
first violation masked silently by a TB interval, the error relay arming
the second stage, and a two-stage violation masked by a TB + ED borrow
and flagged on the falling clock edge.
"""

from repro.analysis.experiments import two_stage_waveform_experiment

SIGNALS = ["clk", "d1", "q1", "err1", "d2", "q2", "err2"]


def test_fig5(benchmark, report):
    result = benchmark.pedantic(
        two_stage_waveform_experiment, args=("ff",),
        rounds=1, iterations=1)

    # The Fig. 5 narrative: first error masked, not flagged; second
    # (two-stage) error masked AND flagged; both outputs correct.
    assert not result.stage1_flagged
    assert result.stage2_flagged
    assert result.q1_final == "1"
    assert result.q2_final == "1"

    # Err2 must latch on a falling clock edge (paper Sec. 4).
    err2 = result.recorder["err2"]
    rise_times = [e.time_ps for e in err2.edges() if str(e.new) == "1"]
    assert rise_times, "err2 must assert"
    falling_edges = result.recorder["clk"].falling_edges()
    assert any(abs(rise_times[0] - fall) <= 50 for fall in falling_edges)

    art = result.recorder.render_ascii(
        end_ps=3 * result.period_ps + result.period_ps // 2,
        step_ps=50, order=SIGNALS)
    report("fig5_timber_ff_waveforms",
           art + "\nlegend: '#' high, '_' low, '?' unknown; "
                 "one column = 50 ps")
