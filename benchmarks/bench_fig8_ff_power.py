"""Fig. 8(ii) — TIMBER flip-flop power overhead vs recovered margin.

Regenerates both panels: (a) without the TB interval (margin c/2,
immediate flagging) and (b) with the TB interval (margin c/3, deferred
flagging).  Each series plots total power overhead against the timing
margin recovered, per performance point.

Shape checks: overhead grows with the checking period; for the same
checking period the with-TB variant recovers exactly 2/3 of the margin
at the same power; overhead magnitudes sit in the paper's low-double-
digit band (its chart tops out around ~13%).

Expected delta from the simulator toggle-energy fix (the initial
X -> known settle no longer charges ``toggle_energy``): **none** — these
overheads come from the analytic cost model in ``design.summary()``,
not from event-simulation energy, so the numbers in this artefact are
unchanged.  The event-simulator side of that fix is pinned by
``tests/unit/test_engine.py::TestSettleAccounting`` (priming a netlist
now reports exactly 0 dynamic energy; before the fix it reported one
toggle per primed gate output).
"""

import pytest

from repro.analysis.experiments import fig8_experiment
from repro.analysis.tables import format_table


def test_fig8_ff_power(benchmark, report):
    rows = benchmark.pedantic(fig8_experiment, rounds=1, iterations=1)
    ff_rows = [r for r in rows if r.style == "ff"]

    table_rows = []
    for row in sorted(ff_rows, key=lambda r: (r.point, r.checking_percent,
                                              r.with_tb_interval)):
        table_rows.append([
            row.point,
            f"{row.checking_percent:.0f}%",
            "with TB" if row.with_tb_interval else "without TB",
            f"{row.margin_percent:.1f}",
            f"{row.power_overhead_percent:.2f}",
        ])
    table = format_table(
        ["point", "checking period", "variant",
         "margin recovered (% of T)", "power overhead %"],
        table_rows)

    by_key: dict[tuple, list] = {}
    for row in ff_rows:
        by_key.setdefault((row.point, row.with_tb_interval),
                          []).append(row)
    for (point, with_tb), series in by_key.items():
        series.sort(key=lambda r: r.checking_percent)
        overheads = [r.power_overhead_percent for r in series]
        assert overheads == sorted(overheads)
        assert all(0 < o < 30.0 for o in overheads)

    # Same checking period -> same power, 2/3 margin with the TB interval.
    for point in ("low", "medium", "high"):
        for percent in (10.0, 20.0, 30.0, 40.0):
            pair = [r for r in ff_rows
                    if r.point == point and r.checking_percent == percent]
            with_tb = next(r for r in pair if r.with_tb_interval)
            without = next(r for r in pair if not r.with_tb_interval)
            assert with_tb.power_overhead_percent == pytest.approx(
                without.power_overhead_percent)
            assert with_tb.margin_percent / without.margin_percent == \
                pytest.approx(2.0 / 3.0)

    report("fig8ii_ff_power_overhead", table)
