"""X10 (robustness) — sensitivity of Fig.-8 overheads to cost assumptions.

The one assumption shaping the Fig.-8 magnitudes is the fraction of
baseline power drawn by the flip-flops.  This bench sweeps it from 10%
to 40% of total power on the medium processor and reports how both
deployment overheads move.

Shape checks: overheads scale monotonically (near-linearly) with the
fraction; the latch stays cheaper than the flip-flop at every point; at
the default assumption the medium/30% flip-flop overhead is in the
paper's legible ~13% band.
"""

import pytest

from repro.analysis.sensitivity import overhead_sensitivity
from repro.analysis.tables import format_table
from repro.power.models import DesignCostModel
from repro.processor.generator import generate_processor
from repro.processor.perfpoints import MEDIUM_PERFORMANCE

CHECKING = 30.0


def _run():
    graph = generate_processor(MEDIUM_PERFORMANCE)
    default_fraction = DesignCostModel().sequential_power_fraction(graph)
    result = overhead_sensitivity(graph, percent_checking=CHECKING)
    return graph, default_fraction, result


def test_sensitivity(benchmark, report):
    graph, default_fraction, result = benchmark.pedantic(
        _run, rounds=1, iterations=1)

    rows = []
    for point in result.points:
        rows.append([
            f"{point.sequential_power_fraction * 100:.0f}%",
            f"{point.ff_power_overhead_percent:.2f}",
            f"{point.latch_power_overhead_percent:.2f}",
        ])
    table = format_table(
        ["FF share of baseline power", "TIMBER-FF overhead %",
         "TIMBER-latch overhead %"], rows)

    ff = [p.ff_power_overhead_percent for p in result.points]
    latch = [p.latch_power_overhead_percent for p in result.points]
    assert ff == sorted(ff)
    assert latch == sorted(latch)
    assert result.latch_always_cheaper()
    # The default model sits inside the swept band, near 19%.
    assert 0.10 < default_fraction < 0.40

    header = (f"medium point, {CHECKING:.0f}% checking period; default "
              f"model: FFs draw {default_fraction * 100:.1f}% of "
              f"baseline power\n")
    report("x10_cost_sensitivity", header + table)
