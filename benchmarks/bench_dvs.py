"""X11 (extension) — closed-loop dynamic voltage scaling at the edge.

The application the paper inherits from Razor: lower the supply until
the resilience mechanism reports activity, hold at the edge, bank the
energy.  This bench runs the loop with three error monitors:

* **TIMBER latch** — ED flags warn while *masking*; the loop settles at
  the edge with zero corrupted state and no recovery cycles;
* **Razor** — detections warn but each one costs a replay;
* **canary** — predictions warn before the edge, so the loop parks at a
  higher voltage (the guard band is never recoverable).

Shape checks: all three save energy; TIMBER saves at least as much as
canary (it can dive past the guard band) while keeping throughput above
Razor's (no replay); no scheme corrupts state.
"""

from repro.analysis.tables import format_table
from repro.core.checking_period import CheckingPeriod
from repro.pipeline.dvfs import AdaptiveVoltageScaler
from repro.pipeline.pipeline import PipelineSimulation
from repro.pipeline.schemes import (
    CanaryPolicy,
    RazorPolicy,
    TimberLatchPolicy,
)
from repro.pipeline.stage import PipelineStage
from repro.variability import CompositeVariation, LocalVariation

PERIOD = 1000
NUM_STAGES = 4
NUM_CYCLES = 20_000
CHECKING = 30.0


def _run():
    # The DVS monitor wants *every* violation flagged, so TIMBER runs
    # the paper's without-TB layout here (Sec. 4: eliminating the TB
    # interval flags single-stage errors immediately) — deferred
    # flagging would let silent TB borrows chain several hundred cycles
    # between control windows.
    cp = CheckingPeriod.without_tb(PERIOD, CHECKING)
    policies = {
        "timber-latch": TimberLatchPolicy(NUM_STAGES, cp),
        "razor": RazorPolicy(NUM_STAGES, window_ps=cp.checking_ps,
                             replay_penalty=5),
        # A full-window guard band would predict on every typical
        # capture at nominal voltage; deployments size the canary delay
        # to the margin they watch for.
        "canary": CanaryPolicy(NUM_STAGES, guard_ps=100),
    }
    results = {}
    for name, policy in policies.items():
        stages = [
            PipelineStage(name=f"dvs{i}", critical_delay_ps=880,
                          typical_delay_ps=780,
                          sensitization_prob=0.3, seed=800 + i)
            for i in range(NUM_STAGES)
        ]
        scaler = AdaptiveVoltageScaler(
            period_ps=PERIOD, window_cycles=64, vdd_step=0.01,
            flag_budget=0)
        sim = PipelineSimulation(
            stages, policy, period_ps=PERIOD, controller=scaler,
            variability=CompositeVariation([
                LocalVariation(sigma=0.01, max_factor=1.02, seed=81),
                scaler,
            ]),
        )
        results[name] = (sim.run(NUM_CYCLES), scaler)
    return results


def test_dvs(benchmark, report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = []
    for name, (result, scaler) in results.items():
        rows.append([
            name,
            f"{scaler.settled_vdd:.3f}",
            f"{scaler.energy_savings_percent():.1f}",
            result.masked + result.detected,
            result.predicted,
            result.failed,
            f"{result.throughput_factor:.4f}",
        ])
    table = format_table(
        ["monitor", "settled Vdd", "energy saved %",
         "violations seen", "predictions", "failed", "throughput"],
        rows)

    timber, timber_scaler = results["timber-latch"]
    razor, razor_scaler = results["razor"]
    canary, canary_scaler = results["canary"]

    for result, _scaler in results.values():
        assert result.failed == 0
    for _result, scaler in results.values():
        assert scaler.energy_savings_percent() > 0
    # The after-the-edge monitors park below nominal; canary oscillates
    # around nominal (its predictions fire one step down), so its
    # *final* voltage can be back at 1.0 while its mean sits below.
    assert timber_scaler.settled_vdd < timber_scaler.model.nominal_vdd
    assert razor_scaler.settled_vdd < razor_scaler.model.nominal_vdd
    # Canary's standing guard band parks the loop at a higher voltage.
    assert timber_scaler.settled_vdd <= canary_scaler.settled_vdd
    assert timber_scaler.energy_savings_percent() >= \
        canary_scaler.energy_savings_percent()
    # TIMBER masks where Razor replays: better throughput at the edge.
    assert timber.throughput_factor >= razor.throughput_factor
    assert razor.replay_cycles > 0
    assert timber.replay_cycles == 0

    report("x11_closed_loop_dvs", table)
