#!/usr/bin/env python3
"""Fault injection: SEUs, delay faults, and what TIMBER sees.

Demonstrates the fault-injection framework on structural TIMBER
elements:

1. an SEU landing in the ED portion of a TIMBER latch's checking period
   is detected by the master/slave comparison — the soft-error synergy
   of level-sensitive double sampling;
2. a narrow SEU inside the TB interval settles before either latch
   closes and is absorbed silently;
3. a delay fault on a data path turns into an ordinary masked timing
   error, with the faulty and fault-free views compared side by side;
4. the whole scenario is exported as a VCD file for waveform viewers.

Run:  python examples/fault_injection.py [out.vcd]
"""

import sys

from repro.circuit.logic import Logic
from repro.sequential import TimberLatch
from repro.sim import (
    ClockGenerator,
    FaultInjector,
    Simulator,
    WaveformRecorder,
    write_vcd,
)

PERIOD = 1000
TB = 100
CHECK = 300


def main() -> None:
    sim = Simulator()
    ClockGenerator(sim, "clk", PERIOD)
    for signal in ("d_ed", "d_tb", "d_path"):
        sim.set_initial(signal, 0)

    ed_latch = TimberLatch(sim, name="ed", d="d_ed", clk="clk", q="q_ed",
                           err="err_ed", tb_ps=TB, checking_ps=CHECK)
    tb_latch = TimberLatch(sim, name="tb", d="d_tb", clk="clk", q="q_tb",
                           err="err_tb", tb_ps=TB, checking_ps=CHECK)
    injector = FaultInjector(sim)

    # 1. SEU across the master/slave closing instants: flagged.
    injector.inject_seu("d_ed", at_ps=PERIOD + 150, width_ps=250)
    # 2. SEU contained in the TB interval: silent.
    injector.inject_seu("d_tb", at_ps=PERIOD + 20, width_ps=50)
    # 3. Delay fault: the faulted copy of d_path switches 180 ps later,
    # landing its (otherwise timing-clean) transition in the ED portion.
    injector.inject_delay_fault("d_path", from_ps=0, extra_delay_ps=180)
    faulty = injector.delayed_name("d_path")
    path_latch = TimberLatch(sim, name="path", d=faulty, clk="clk",
                             q="q_path", err="err_path", tb_ps=TB,
                             checking_ps=CHECK)
    sim.drive("d_path", 1, 2 * PERIOD - 40)  # meets timing unfaulted

    recorder = WaveformRecorder([
        "clk", "d_ed", "q_ed", "err_ed", "d_tb", "q_tb", "err_tb",
        "d_path", faulty, "q_path", "err_path",
    ])
    recorder.attach(sim)
    sim.run(3 * PERIOD)

    print("1. SEU in the ED window:   err_ed =", sim.value("err_ed"),
          " (detected, as a late-arrival would be)")
    print("2. SEU inside TB:          err_tb =", sim.value("err_tb"),
          " (absorbed silently)")
    print("3. delay fault on d_path:  q_path =", sim.value("q_path"),
          f" err_path = {sim.value('err_path')} "
          "(masked by borrowing, flagged in the ED portion)")
    print(f"\ninjected faults: {len(injector.log)}")
    for fault in injector.log:
        print(f"  {fault.kind:8s} on {fault.signal:8s} at "
              f"{fault.time_ps} ps ({fault.detail})")

    if len(sys.argv) > 1:
        write_vcd(sys.argv[1], recorder, end_ps=3 * PERIOD)
        print(f"\nwaveforms written to {sys.argv[1]}")
    else:
        print("\n(pass a filename to export the scenario as VCD)")


if __name__ == "__main__":
    main()
