#!/usr/bin/env python3
"""Waveform gallery: the paper's Figs. 5 and 7 as ASCII timing diagrams.

Drives the structural (latch-level) TIMBER flip-flop and TIMBER latch
through the two-stage timing-error scenario and renders the resulting
waveforms — the event-driven stand-in for the paper's SPICE plots.

Run:  python examples/waveform_gallery.py
"""

from repro.analysis.experiments import two_stage_waveform_experiment

SIGNALS = ["clk", "d1", "q1", "err1", "d2", "q2", "err2"]


def show(style: str, title: str) -> None:
    result = two_stage_waveform_experiment(style)
    print(f"=== {title} ===")
    print(result.recorder.render_ascii(
        end_ps=3 * result.period_ps + result.period_ps // 2,
        step_ps=50, order=SIGNALS))
    print(f"stage 1 flagged: {result.stage1_flagged}   "
          f"stage 2 flagged: {result.stage2_flagged}")
    print()


def main() -> None:
    print(__doc__)
    print("legend: '#' high, '_' low, '?' unknown; one column = 50 ps\n")
    show("ff", "Fig. 5 — two-stage timing error, TIMBER flip-flop")
    print("The first late arrival on d1 (after the second clock edge) is")
    print("masked by borrowing one TB interval: q1 still settles to the")
    print("correct value and err1 stays low.  The error relay arms stage")
    print("2's select; its deeper violation borrows a TB + an ED")
    print("interval, so q2 is also corrected and err2 latches high on")
    print("the falling edge.\n")
    show("latch", "Fig. 7 — two-stage timing error, TIMBER latch")
    print("The latch masks continuously: q follows the late data the")
    print("moment it arrives (no discrete interval rounding, no relay).")
    print("The master/slave comparison on the falling edge flags only")
    print("the arrival that fell in the ED portion.")


if __name__ == "__main__":
    main()
