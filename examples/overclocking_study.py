#!/usr/bin/env python3
"""Margin-recovery payoff: overclocking past sign-off with each scheme.

TIMBER's selling point is that the recovered dynamic margin can be spent
— as higher frequency or lower voltage — without rollback hardware.
This study shrinks the clock period past the sign-off point and measures
the speedup each scheme actually delivers once its recovery costs
(replay cycles, controller slowdowns, guard-band stalls) are charged.

Run:  python examples/overclocking_study.py
"""

from repro.analysis.experiments import throughput_sweep
from repro.analysis.tables import format_series, format_table

OVERCLOCKS = (0.0, 3.0, 6.0, 9.0, 12.0)
TECHNIQUES = ("timber-ff", "timber-latch", "razor", "canary")


def main() -> None:
    points = throughput_sweep(
        techniques=TECHNIQUES,
        overclock_percents=OVERCLOCKS,
        num_cycles=30_000,
    )

    by_technique: dict[str, list] = {key: [] for key in TECHNIQUES}
    for point in points:
        by_technique[point.technique].append(point)

    rows = []
    for technique, series in by_technique.items():
        row = [technique]
        for point in sorted(series, key=lambda p: p.overclock_percent):
            row.append(f"{point.effective_speedup:.3f}"
                       f" ({point.result.failed} fail)")
        rows.append(row)

    headers = ["scheme"] + [f"+{oc:.0f}%" for oc in OVERCLOCKS]
    print("effective speedup vs nominal (higher is better; 'fail' = "
          "silent corruptions)\n")
    print(format_table(headers, rows))
    print()
    for technique, series in by_technique.items():
        ordered = sorted(series, key=lambda p: p.overclock_percent)
        print(format_series(
            technique,
            [f"+{p.overclock_percent:.0f}%" for p in ordered],
            [p.effective_speedup for p in ordered],
            x_label="overclock", y_label="speedup", float_digits=3))
    print()
    print("reading: the masking schemes convert overclock into real "
          "speedup until the")
    print("violation rate saturates the checking period; Razor's replay "
          "and canary's")
    print("standing slowdowns eat progressively more of the gain.")


if __name__ == "__main__":
    main()
