#!/usr/bin/env python3
"""Voltage-droop resilience: TIMBER vs Razor vs canary vs unprotected.

The scenario the paper's introduction motivates: a processor running
with its dynamic-variability margin removed is hit by supply droops.
We run the same five-stage pipeline under the same droop process with
each resilience scheme at the capture boundaries and compare what
happens to correctness and throughput.

Run:  python examples/droop_resilience.py
"""

from repro.analysis.metrics import summarize_results
from repro.analysis.tables import format_table
from repro.core import CheckingPeriod
from repro.pipeline import (
    CanaryPolicy,
    CentralErrorController,
    PipelineSimulation,
    PipelineStage,
    PlainPolicy,
    RazorPolicy,
    TimberFFPolicy,
    TimberLatchPolicy,
)
from repro.variability import (
    CompositeVariation,
    LocalVariation,
    VoltageDroopVariation,
)

PERIOD_PS = 1000
NUM_STAGES = 5
NUM_CYCLES = 50_000
CHECKING_PERCENT = 30.0


def build_stages() -> list[PipelineStage]:
    return [
        PipelineStage(
            name=f"ex{i}", critical_delay_ps=950, typical_delay_ps=700,
            sensitization_prob=0.08, seed=500 + i,
        )
        for i in range(NUM_STAGES)
    ]


def build_stress() -> CompositeVariation:
    return CompositeVariation([
        LocalVariation(sigma=0.015, max_factor=1.03, seed=7),
        VoltageDroopVariation(event_probability=3e-3, amplitude=0.08,
                              amplitude_jitter=0.0, seed=8),
    ])


def main() -> None:
    cp = CheckingPeriod.with_tb(PERIOD_PS, CHECKING_PERCENT)
    policies = {
        "unprotected": PlainPolicy(NUM_STAGES),
        "timber-ff": TimberFFPolicy(NUM_STAGES, cp),
        "timber-latch": TimberLatchPolicy(NUM_STAGES, cp),
        "razor": RazorPolicy(NUM_STAGES, window_ps=cp.checking_ps,
                             replay_penalty=5),
        "canary": CanaryPolicy(NUM_STAGES, guard_ps=cp.checking_ps),
    }

    results = []
    for name, policy in policies.items():
        controller = CentralErrorController(
            period_ps=PERIOD_PS, consolidation_latency_ps=PERIOD_PS)
        simulation = PipelineSimulation(
            build_stages(), policy, period_ps=PERIOD_PS,
            controller=controller, variability=build_stress())
        results.append(simulation.run(NUM_CYCLES))

    summary = summarize_results(results)
    rows = []
    for scheme, metrics in summary.items():
        rows.append([
            scheme,
            int(metrics["masked"]),
            int(metrics["detected"]),
            int(metrics["predicted"]),
            int(metrics["failed"]),
            f"{metrics['throughput_factor']:.4f}",
        ])
    print(f"{NUM_CYCLES} cycles, {NUM_STAGES} stages, 8% droops, "
          f"{CHECKING_PERCENT:.0f}% checking period\n")
    print(format_table(
        ["scheme", "masked", "detected", "predicted", "failed (silent)",
         "throughput"], rows))
    print()
    print("reading: the unprotected design silently corrupts state on "
          "every droop;")
    print("Razor catches the same errors but pays replay cycles; canary "
          "predicts and")
    print("slows down pre-emptively; TIMBER masks everything at ~full "
          "throughput.")


if __name__ == "__main__":
    main()
