#!/usr/bin/env python3
"""The paper's Sec. 6 case study, end to end.

Builds the synthetic industrial processor at all three performance
points, deploys TIMBER flip-flops and TIMBER latches at every studied
checking period (10/20/30/40% of the clock period), and prints the
Fig.-8 panels: relay area/slack, power overheads with and without the
TB interval, and the margin each configuration recovers.  Finishes by
sizing the error-consolidation OR-tree against the 1.5-cycle budget.

Run:  python examples/processor_case_study.py
"""

from repro.analysis.tables import format_table
from repro.core import (
    CheckingPeriod,
    TimberDesign,
    TimberStyle,
    build_or_tree,
)
from repro.processor import PERFORMANCE_POINTS, generate_processor

CHECKING = (10.0, 20.0, 30.0, 40.0)


def main() -> None:
    graphs = {p.name: generate_processor(p) for p in PERFORMANCE_POINTS}

    print("=== Fig. 8(i): error relay — area overhead and timing "
          "slack ===")
    rows = []
    for point in PERFORMANCE_POINTS:
        for percent in CHECKING:
            design = TimberDesign(graph=graphs[point.name],
                                  style=TimberStyle.FLIP_FLOP,
                                  percent_checking=percent)
            summary = design.summary()
            rows.append([
                point.name, f"{percent:.0f}%",
                int(summary["ffs_replaced"]),
                f"{summary['relay_area_overhead_percent']:.2f}",
                f"{summary['relay_slack_percent']:.0f}",
            ])
    print(format_table(
        ["point", "checking", "FFs replaced", "relay area %",
         "relay slack %"], rows))

    for style, title in ((TimberStyle.FLIP_FLOP,
                          "Fig. 8(ii): TIMBER flip-flop"),
                         (TimberStyle.LATCH,
                          "Fig. 8(iii): TIMBER latch")):
        print(f"\n=== {title}: power overhead vs recovered margin ===")
        rows = []
        for point in PERFORMANCE_POINTS:
            for percent in CHECKING:
                for with_tb in (False, True):
                    design = TimberDesign(
                        graph=graphs[point.name], style=style,
                        percent_checking=percent,
                        with_tb_interval=with_tb)
                    summary = design.summary()
                    rows.append([
                        point.name, f"{percent:.0f}%",
                        "1TB+2ED" if with_tb else "2ED",
                        f"{summary['margin_percent']:.1f}",
                        f"{summary['power_overhead_percent']:.2f}",
                    ])
        print(format_table(
            ["point", "checking", "layout", "margin % of T",
             "power overhead %"], rows))

    print("\n=== error-consolidation OR-tree vs the 1.5-cycle budget "
          "===")
    rows = []
    for point in PERFORMANCE_POINTS:
        design = TimberDesign(graph=graphs[point.name],
                              style=TimberStyle.FLIP_FLOP,
                              percent_checking=30.0)
        tree = build_or_tree(len(design.protected_ffs), fanin=4)
        cp = CheckingPeriod.with_tb(point.period_ps, 30.0)
        rows.append([
            point.name, len(design.protected_ffs), tree.depth,
            tree.latency_ps, cp.consolidation_budget_ps(),
            "yes" if tree.fits_budget(cp, controller_decision_ps=120)
            else "NO",
        ])
    print(format_table(
        ["point", "error sources", "tree depth", "tree latency (ps)",
         "budget (ps)", "fits?"], rows))


if __name__ == "__main__":
    main()
