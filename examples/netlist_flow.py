#!/usr/bin/env python3
"""Gate-level flow: protect your own netlist with TIMBER.

Walks the flow a user would run on a real design:

1. build (here: generate) a gate-level netlist;
2. run STA and enumerate the worst register-to-register paths;
3. plan and apply the short-path padding the checking period demands;
4. reduce the netlist to a flip-flop-level timing graph;
5. deploy TIMBER and report the bill of materials.

Run:  python examples/netlist_flow.py
"""

from repro.analysis.tables import format_table
from repro.circuit.generate import random_stage
from repro.core import CheckingPeriod, TimberDesign, TimberStyle
from repro.timing import (
    apply_hold_padding,
    enumerate_paths,
    hold_padding_plan,
    netlist_to_timing_graph,
    run_sta,
)

# A period chosen just above the design's worst arrival, as a real
# sign-off would: that leaves the top paths with little slack, so the
# TIMBER deployment below actually has endpoints to protect.
PERIOD_PS = 390
CHECKING_PERCENT = 20.0
HOLD_PS = 15


def main() -> None:
    # -- 1. The design ---------------------------------------------------
    netlist = random_stage(num_inputs=16, num_outputs=12, depth=10,
                           width=24, seed=2024)
    # Add a register-to-register bypass (e.g. a pipeline valid bit):
    # exactly the kind of short path the checking period forces us to pad.
    netlist.add_gate("bypass", "BUF", ["pi0"], "valid_q")
    netlist.add_output("valid_q", registered=True)
    stats = netlist.stats()
    print(f"netlist: {stats['gates']:.0f} gates, "
          f"{len(netlist.launch_nets)} launch / "
          f"{len(netlist.capture_nets)} capture registers")

    # -- 2. Timing sign-off ------------------------------------------------
    sta = run_sta(netlist, PERIOD_PS)
    print(f"worst setup slack: {sta.worst_slack} ps at "
          f"{sta.critical_capture_net} "
          f"({'meets' if sta.meets_timing() else 'FAILS'} timing)\n")

    paths = enumerate_paths(netlist, PERIOD_PS, max_paths_per_endpoint=4)
    rows = [
        [p.launch, p.capture, p.depth, p.delay_ps]
        for p in paths.top_count(5)
    ]
    print("five worst paths:")
    print(format_table(["launch", "capture", "gates", "delay (ps)"],
                       rows))
    print()

    # -- 3. Hold fixing for the checking period -----------------------------
    cp = CheckingPeriod.with_tb(PERIOD_PS, CHECKING_PERCENT)
    plan = hold_padding_plan(netlist, hold_ps=HOLD_PS,
                             checking_ps=cp.checking_ps)
    apply_hold_padding(netlist, plan)
    print(f"hold fixing for a {cp.checking_ps} ps checking period: "
          f"{plan.total_buffers} delay buffers across "
          f"{plan.endpoints_fixed} endpoints "
          f"(area +{plan.total_area:.0f} units)\n")

    # -- 4./5. Reduce and deploy -----------------------------------------
    graph = netlist_to_timing_graph(netlist, PERIOD_PS)
    design = TimberDesign(graph=graph, style=TimberStyle.FLIP_FLOP,
                          percent_checking=CHECKING_PERCENT)
    summary = design.summary()
    print("TIMBER deployment:")
    print(f"  flip-flops replaced: {summary['ffs_replaced']:.0f} of "
          f"{summary['ffs_total']:.0f}")
    print(f"  recovered margin:    {design.recovered_margin_ps} ps "
          f"({summary['margin_percent']:.1f}% of the period)")
    print(f"  power overhead:      "
          f"{summary['power_overhead_percent']:.2f}%")
    print(f"  relay slack:         "
          f"{summary['relay_slack_percent']:.0f}% of the half-cycle "
          f"budget")


if __name__ == "__main__":
    main()
