#!/usr/bin/env python3
"""Workload phases: violation pressure follows the program.

Runs the whole-processor simulation under a phased workload trace
(compute kernel -> memory stall -> branchy -> idle) combined with
droops, and shows how masked-error activity tracks the phases — the
reason the paper's dynamic margins are *workload*-dependent, and why an
online technique beats a worst-case static margin.

Run:  python examples/workload_phases.py
"""

from repro.analysis.tables import format_table
from repro.pipeline import CentralErrorController, GraphPipelineSimulation
from repro.processor import MEDIUM_PERFORMANCE, generate_processor, \
    synthetic_trace
from repro.variability import VoltageDroopVariation

NUM_CYCLES = 6_000
CHECKING = 30.0


def run(trace_kind: str | None):
    graph = generate_processor(MEDIUM_PERFORMANCE, num_stages=6,
                               ffs_per_stage=60, fanin=4, seed=21)
    trace = synthetic_trace(trace_kind) if trace_kind else None
    controller = CentralErrorController(
        period_ps=graph.period_ps,
        consolidation_latency_ps=graph.period_ps)
    sim = GraphPipelineSimulation(
        graph, scheme="timber-latch", percent_checking=CHECKING,
        sensitization_prob=0.02,
        variability=VoltageDroopVariation(event_probability=3e-3,
                                          amplitude=0.07,
                                          amplitude_jitter=0.0, seed=9),
        controller=controller, trace=trace, seed=4,
    )
    return trace, sim.run(NUM_CYCLES), controller


def main() -> None:
    rows = []
    for kind in (None, "compute", "memory", "mixed"):
        trace, result, controller = run(kind)
        label = kind or "stationary (scale 1.0)"
        mean_scale = trace.mean_scale() if trace else 1.0
        rows.append([
            label,
            f"{mean_scale:.2f}",
            result.masked,
            result.masked_flagged,
            result.failed + result.failed_unprotected,
            controller.flags_received,
        ])
    print(f"TIMBER-latch on the synthetic processor, {NUM_CYCLES} "
          f"cycles, 7% droops, {CHECKING:.0f}% checking period\n")
    print(format_table(
        ["workload", "mean sens. scale", "masked", "flagged",
         "failures", "controller flags"], rows))
    print()
    print("reading: compute-heavy phases exercise critical paths more, "
          "so the same droop")
    print("process produces more (masked) violations; memory-stall "
          "phases are nearly quiet.")
    print("A static worst-case margin would pay for the compute phase "
          "all the time; TIMBER")
    print("pays only when violations actually happen.")


if __name__ == "__main__":
    main()
