#!/usr/bin/env python3
"""Quickstart: deploy TIMBER on a synthetic processor and price it.

This is the 60-second tour of the library:

1. generate the paper's "industrial processor" surrogate at the medium
   performance point;
2. look at the critical-path distribution that motivates TIMBER (Fig. 1);
3. deploy TIMBER flip-flops with a 30% checking period and report the
   recovered margin, the replaced flip-flops, and the power/area
   overheads (Fig. 8);
4. mask a real two-stage timing error in an event-driven simulation of
   the structural TIMBER flip-flop (Fig. 5).

Run:  python examples/quickstart.py
"""

from repro.analysis.experiments import two_stage_waveform_experiment
from repro.analysis.tables import format_table
from repro.core import CheckingPeriod, TimberDesign, TimberStyle
from repro.processor import MEDIUM_PERFORMANCE, generate_processor
from repro.timing import distribution_sweep


def main() -> None:
    # -- 1. The design under protection --------------------------------
    graph = generate_processor(MEDIUM_PERFORMANCE)
    print(f"synthetic processor: {graph.num_ffs} flip-flops, "
          f"{graph.num_edges} register-to-register paths, "
          f"clock period {graph.period_ps} ps\n")

    # -- 2. Why time borrowing works (Fig. 1) ---------------------------
    rows = []
    for dist in distribution_sweep(graph):
        rows.append([
            f"top {dist.percent_threshold:.0f}%",
            f"{dist.pct_ffs_ending:.1f}",
            f"{dist.pct_ffs_through:.1f}",
            f"{dist.pct_endpoints_single_stage_only:.0f}",
        ])
    print("critical-path distribution (medium performance point):")
    print(format_table(
        ["criticality", "% FFs ending", "% FFs start+end",
         "% endpoints single-stage-only"], rows))
    print()

    # -- 3. Deploy TIMBER (Sec. 6 / Fig. 8) ------------------------------
    cp = CheckingPeriod.with_tb(graph.period_ps, 30)
    print(f"checking period: {cp.checking_ps} ps "
          f"({cp.num_tb} TB + {cp.num_intervals - cp.num_tb} ED "
          f"intervals of {cp.interval_ps} ps)")
    print(f"recovered dynamic margin per stage: "
          f"{cp.recovered_margin_ps} ps "
          f"({cp.recovered_margin_percent:.1f}% of the period)")
    print(f"controller consolidation budget: "
          f"{cp.consolidation_budget_ps() / graph.period_ps:.1f} cycles\n")

    for style in (TimberStyle.FLIP_FLOP, TimberStyle.LATCH):
        design = TimberDesign(graph=graph, style=style,
                              percent_checking=30.0)
        summary = design.summary()
        print(f"TIMBER {style.value}: replaces "
              f"{summary['ffs_replaced']:.0f}/{summary['ffs_total']:.0f} "
              f"FFs, power overhead {summary['power_overhead_percent']:.1f}%"
              f", relay area overhead "
              f"{summary['relay_area_overhead_percent']:.2f}%"
              f", relay slack {summary['relay_slack_percent']:.0f}% "
              f"of the half-cycle budget")
    print()

    # -- 4. Mask a two-stage timing error (Fig. 5) -----------------------
    result = two_stage_waveform_experiment("ff")
    print("two-stage error on structural TIMBER flip-flops:")
    print(f"  stage 1: masked silently (flagged={result.stage1_flagged})")
    print(f"  stage 2: masked and flagged "
          f"(flagged={result.stage2_flagged})")
    print(f"  final outputs q1={result.q1_final} q2={result.q2_final} "
          f"(both correct: no rollback, no replay)")


if __name__ == "__main__":
    main()
